// Package httpapi exposes a simulated LBS over HTTP and provides a
// client that implements the estimators' Oracle interface — the
// blueprint for running the algorithms against a real networked
// service. Both sides use only net/http and encoding/json.
//
// Wire protocol (JSON over GET, plus POST for batches):
//
//	GET /v1/meta                      → {k, min_x, min_y, max_x, max_y}
//	GET /v1/lr?x=..&y=..[&name=..][&category=..]   → {results: [...with locations]}
//	GET /v1/lnr?x=..&y=..[&name=..][&category=..]  → {results: [...ids+attrs only]}
//	POST /v1/query/lr:batch   {points:[{x,y},...][,name][,category]}
//	  → {answers:[{results:[...]}|null, ...][, exhausted]}
//	POST /v1/query/lnr:batch  (same shape, rank-only results)
//	POST /v1/tuples:stream    NDJSON mutation ops → NDJSON per-op acks
//	                          (live backends only; see ingest.go)
//
// A batch answers up to maxBatchPoints locations in one HTTP request
// and one server-side budget reservation; answers are index-aligned
// with the points, a null answer marks a position the budget could
// not cover (exhausted=true rides along), and each answered point
// costs one unit of budget. Clients under heavy concurrent traffic
// should prefer the batch endpoints: the per-request overhead is paid
// once per batch instead of once per sample.
//
// Selection pass-through (§5.1) is declarative on the wire: name and
// category equality filters ride along as query parameters (or batch
// body fields). The client is constructed with a fixed Selection; the
// per-call filter argument of the Oracle interface must be nil (a
// functional filter cannot cross the network).
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/live"
)

// Selection is the declarative server-side filter of the wire
// protocol: zero values match everything.
type Selection struct {
	Name     string
	Category string
}

func (s Selection) filter() lbs.Filter {
	if s.Name == "" && s.Category == "" {
		return nil
	}
	return func(t *lbs.Tuple) bool {
		return (s.Name == "" || t.Name == s.Name) &&
			(s.Category == "" || t.Category == s.Category)
	}
}

// wire types

type metaResponse struct {
	K    int     `json:"k"`
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
	// Metric names the backend's distance metric (euclidean |
	// haversine). Absent on pre-geodesic servers, which clients read as
	// euclidean.
	Metric string `json:"metric,omitempty"`
}

type wireRecord struct {
	ID       int64              `json:"id"`
	X        *float64           `json:"x,omitempty"`
	Y        *float64           `json:"y,omitempty"`
	Dist     *float64           `json:"dist,omitempty"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

type queryResponse struct {
	Results []wireRecord `json:"results"`
}

// codeBudgetExhausted marks a 429 caused by the service's hard query
// budget, which no amount of retrying will lift — as opposed to a
// transient rate-limit 429, which retry policies may wait out.
const codeBudgetExhausted = "budget_exhausted"

// codeJobsExhausted marks a 429 caused by the job table being at
// capacity with every retained job still running — transient server
// state that clears as soon as one job settles. Unlike a spent budget
// it IS worth retrying, and because the refused submission created no
// job, even non-idempotent clients may replay it safely.
const codeJobsExhausted = "jobs_exhausted"

type errorResponse struct {
	Error string `json:"error"`
	// Code is a machine-readable error class (codeBudgetExhausted).
	Code string `json:"code,omitempty"`
}

// Partial-answer headers: a federated backend that lost a shard still
// answers 200 from the survivors, carrying the lbs.PartialError
// annotation as response headers so remote callers keep the degraded-
// mode contract. Degraded counts positions answered from a partial
// federation, Dropped positions with no answer (their wire entries are
// null), Missing the member subqueries lost or skipped.
const (
	headerPartialDegraded = "X-Lbs-Partial-Degraded"
	headerPartialDropped  = "X-Lbs-Partial-Dropped"
	headerPartialMissing  = "X-Lbs-Partial-Missing"
)

// setPartialHeaders renders a partial annotation onto a 200 response.
func setPartialHeaders(w http.ResponseWriter, pe *lbs.PartialError) {
	h := w.Header()
	h.Set(headerPartialDegraded, strconv.Itoa(pe.Degraded))
	if pe.Dropped > 0 {
		h.Set(headerPartialDropped, strconv.Itoa(pe.Dropped))
	}
	if pe.Missing > 0 {
		h.Set(headerPartialMissing, strconv.Itoa(pe.Missing))
	}
}

// partialOfHeaders reconstructs the annotation client-side; nil when
// the response carries none.
func partialOfHeaders(h http.Header) *lbs.PartialError {
	deg := h.Get(headerPartialDegraded)
	if deg == "" {
		return nil
	}
	pe := &lbs.PartialError{}
	pe.Degraded, _ = strconv.Atoi(deg)
	pe.Dropped, _ = strconv.Atoi(h.Get(headerPartialDropped))
	pe.Missing, _ = strconv.Atoi(h.Get(headerPartialMissing))
	return pe
}

// batch wire types

type wirePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type batchRequest struct {
	Points   []wirePoint `json:"points"`
	Name     string      `json:"name,omitempty"`
	Category string      `json:"category,omitempty"`
}

type batchResponse struct {
	// Answers is index-aligned with the request points; a null entry
	// marks a point the budget could not cover.
	Answers []*queryResponse `json:"answers"`
	// Exhausted reports that the service budget died inside (or right
	// at the end of) this batch.
	Exhausted bool `json:"exhausted,omitempty"`
}

// maxBatchPoints caps the points per batch request and
// maxBatchBodyBytes caps the request body read before decoding, so
// one POST can bound neither unbounded work nor unbounded memory on
// the server. 1024 points encode to ~50 KB; 256 KB leaves generous
// slack for selection strings.
const (
	maxBatchPoints    = 1024
	maxBatchBodyBytes = 256 << 10
)

// ErrPerCallFilter is returned by the HTTP client when a query
// carries a non-nil functional filter: closures cannot cross the
// network, so selections must be configured declaratively (Selection)
// per client. A federation front over remote upstreams surfaces it as
// a 400 — filtered queries need per-selection upstream clients, the
// same per-selection discipline CacheOptions.Selection imposes on
// shared caches.
var ErrPerCallFilter = errors.New("httpapi: per-call filters unsupported; configure Selection on the client")

// Server adapts a service view into an http.Handler. Any lbs.Querier
// works as the backend: the raw simulator, or a CachedOracle layered
// in front of it (a caching gateway). Beyond the raw oracle endpoints,
// the server runs estimation jobs (see handleEstimate and the jobs
// package) and reports live service stats (/v1/stats).
type Server struct {
	svc     lbs.Querier
	mutator live.Mutator
	jobs    *jobs.Manager
	mux     *http.ServeMux
	// metric is the backend's distance metric, probed once at
	// construction (metricOf) and advertised on /v1/meta and /v1/stats.
	metric geo.Metric
	// partials counts answers served degraded (partial federation).
	partials atomic.Int64
}

// ServerOptions configures the optional subsystems of a Server.
type ServerOptions struct {
	// Jobs configures the estimation-job manager (retention cap,
	// default per-job query budget).
	Jobs jobs.ManagerOptions
	// Mutator, when non-nil, enables the streaming mutation endpoint
	// (POST /v1/tuples:stream) against a live backend. It should be the
	// live database (or cluster) underlying svc, so queries observe the
	// applied mutations. Nil means an immutable backend: the endpoint
	// answers 501.
	Mutator live.Mutator
}

// NewServer wraps a service backend with default options.
func NewServer(svc lbs.Querier) *Server { return NewServerWith(svc, ServerOptions{}) }

// NewServerWith wraps a service backend.
func NewServerWith(svc lbs.Querier, opts ServerOptions) *Server {
	s := &Server{
		svc:     svc,
		mutator: opts.Mutator,
		jobs:    jobs.NewManager(svc, opts.Jobs),
		mux:     http.NewServeMux(),
		metric:  metricOf(svc),
	}
	s.mux.HandleFunc("/v1/meta", s.handleMeta)
	s.mux.HandleFunc("/v1/lr", s.handleLR)
	s.mux.HandleFunc("/v1/lnr", s.handleLNR)
	s.mux.HandleFunc("/v1/query/lr:batch", s.handleLRBatch)
	s.mux.HandleFunc("/v1/query/lnr:batch", s.handleLNRBatch)
	s.mux.HandleFunc("POST /v1/tuples:stream", s.handleTupleStream)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	return s
}

// Jobs returns the server's estimation-job manager (e.g. for a
// graceful CancelAll at shutdown).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeQueryError renders a failed backend query: budget exhaustion is
// a 429 carrying its machine-readable code (permanent — clients must
// not retry it); anything else is a 500 (transient from the client's
// point of view).
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, lbs.ErrBudgetExhausted) {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Code: codeBudgetExhausted})
		return
	}
	if errors.Is(err, ErrPerCallFilter) {
		// The backend (e.g. a federation of remote upstreams) cannot
		// apply this request's selection: a client-side request
		// problem, not a server fault.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	b := s.svc.Bounds()
	writeJSON(w, http.StatusOK, metaResponse{
		K:    s.svc.K(),
		MinX: b.Min.X, MinY: b.Min.Y, MaxX: b.Max.X, MaxY: b.Max.Y,
		Metric: s.metric.String(),
	})
}

// metricOf walks a backend's wrapper chain (lbs.Wrapper) for a layer
// that reports its distance metric — lbs.Service, shard.Router,
// live.Database and live.Cluster all do. A chain exposing none is
// Euclidean: every pre-geodesic backend ranks in the plane.
func metricOf(q lbs.Querier) geo.Metric {
	for q != nil {
		if mm, ok := q.(interface{ Metric() geo.Metric }); ok {
			return mm.Metric()
		}
		iw, ok := q.(lbs.Wrapper)
		if !ok {
			break
		}
		q = iw.Inner()
	}
	return geo.Euclidean
}

// parseQuery extracts the location and selection from the URL.
func parseQuery(r *http.Request) (geom.Point, Selection, error) {
	q := r.URL.Query()
	x, errX := strconv.ParseFloat(q.Get("x"), 64)
	y, errY := strconv.ParseFloat(q.Get("y"), 64)
	if errX != nil || errY != nil {
		return geom.Point{}, Selection{}, fmt.Errorf("invalid or missing x/y")
	}
	return geom.Pt(x, y), Selection{Name: q.Get("name"), Category: q.Get("category")}, nil
}

func (s *Server) handleLR(w http.ResponseWriter, r *http.Request) {
	p, sel, err := parseQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	recs, err := s.svc.QueryLR(r.Context(), p, sel.filter())
	if pe, ok := lbs.AsPartial(err); ok {
		s.partials.Add(1)
		setPartialHeaders(w, pe)
	} else if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireLR(recs))
}

// wireLR converts one LR answer to its wire shape.
func wireLR(recs []lbs.LRRecord) queryResponse {
	out := queryResponse{Results: make([]wireRecord, len(recs))}
	for i, rec := range recs {
		x, y, d := rec.Loc.X, rec.Loc.Y, rec.Dist
		out.Results[i] = wireRecord{
			ID: rec.ID, X: &x, Y: &y, Dist: &d,
			Name: rec.Name, Category: rec.Category,
			Attrs: rec.Attrs, Tags: rec.Tags,
		}
	}
	return out
}

func (s *Server) handleLNR(w http.ResponseWriter, r *http.Request) {
	p, sel, err := parseQuery(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	recs, err := s.svc.QueryLNR(r.Context(), p, sel.filter())
	if pe, ok := lbs.AsPartial(err); ok {
		s.partials.Add(1)
		setPartialHeaders(w, pe)
	} else if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wireLNR(recs))
}

// wireLNR converts one LNR answer to its wire shape.
func wireLNR(recs []lbs.LNRRecord) queryResponse {
	out := queryResponse{Results: make([]wireRecord, len(recs))}
	for i, rec := range recs {
		out.Results[i] = wireRecord{
			ID: rec.ID, Name: rec.Name, Category: rec.Category,
			Attrs: rec.Attrs, Tags: rec.Tags,
		}
	}
	return out
}

// parseBatch decodes and validates a batch request body. The body is
// capped at maxBatchBodyBytes *before* decoding, so an oversized POST
// is rejected without allocating it.
func parseBatch(w http.ResponseWriter, r *http.Request) ([]geom.Point, Selection, error) {
	if r.Method != http.MethodPost {
		return nil, Selection{}, fmt.Errorf("batch queries are POST-only")
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)).Decode(&req); err != nil {
		return nil, Selection{}, fmt.Errorf("invalid batch body: %v", err)
	}
	if len(req.Points) == 0 {
		return nil, Selection{}, fmt.Errorf("batch needs at least one point")
	}
	if len(req.Points) > maxBatchPoints {
		return nil, Selection{}, fmt.Errorf("batch of %d points exceeds the %d-point cap", len(req.Points), maxBatchPoints)
	}
	pts := make([]geom.Point, len(req.Points))
	for i, p := range req.Points {
		pts[i] = geom.Pt(p.X, p.Y)
	}
	return pts, Selection{Name: req.Name, Category: req.Category}, nil
}

// serveBatch is the protocol logic shared by both batch endpoints:
// parse, query through the given batch path, and render the aligned
// answers. A batch the budget covered partially returns 200 with nil
// holes and exhausted=true; a batch it covered not at all behaves
// like the single-query path (429).
func serveBatch[T any](s *Server, w http.ResponseWriter, r *http.Request,
	query func(context.Context, []geom.Point, lbs.Filter) ([][]T, error),
	wire func([]T) queryResponse) {

	pts, sel, err := parseBatch(w, r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	answers, err := query(r.Context(), pts, sel.filter())
	exhausted := errors.Is(err, lbs.ErrBudgetExhausted)
	if pe, ok := lbs.AsPartial(err); ok {
		// Degraded but answered: serve the survivors' merge (dropped
		// positions stay null) with the annotation in the headers.
		s.partials.Add(1)
		setPartialHeaders(w, pe)
	} else if err != nil && !exhausted {
		writeQueryError(w, err)
		return
	}
	resp := batchResponse{Answers: make([]*queryResponse, len(answers)), Exhausted: exhausted}
	served := false
	for i, recs := range answers {
		if recs == nil {
			continue
		}
		qr := wire(recs)
		resp.Answers[i] = &qr
		served = true
	}
	if exhausted && !served {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLRBatch(w http.ResponseWriter, r *http.Request) {
	serveBatch(s, w, r, s.svc.QueryLRBatch, wireLR)
}

func (s *Server) handleLNRBatch(w http.ResponseWriter, r *http.Request) {
	serveBatch(s, w, r, s.svc.QueryLNRBatch, wireLNR)
}

// Client is an HTTP implementation of the estimators' Oracle
// interface. It fetches the service metadata once at construction and
// counts queries locally (mirroring how a real client tracks its own
// quota consumption). Transient failures — transport errors, 5xx, and
// 429s that are genuine rate limiting rather than a spent budget — are
// retried with jittered exponential backoff (see RetryPolicy), so
// remote estimation runs survive flaky gateways. Beyond raw queries,
// the client drives server-side estimation jobs (Estimate, Job,
// CancelJob, FollowJobTrace, WaitJob).
type Client struct {
	base    string
	hc      *http.Client
	sel     Selection
	retry   RetryPolicy
	k       int
	bounds  geom.Rect
	metric  geo.Metric
	queries atomic.Int64
}

// SetRetryPolicy replaces the client's retry policy (default
// DefaultRetryPolicy). Call it before sharing the client between
// goroutines.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// metaTimeout bounds the construction-time /v1/meta probe when the
// caller's context carries no deadline of its own and the HTTP client
// has no Timeout, so a dead gateway cannot hang NewClient forever.
const metaTimeout = 10 * time.Second

// NewClient connects to a server at baseURL (e.g. the URL of an
// httptest server or a deployed gateway). sel is the fixed declarative
// selection sent with every query. httpClient may be nil for
// http.DefaultClient. The /v1/meta probe honors ctx (deadline and
// cancellation); without a deadline from either ctx or the client, a
// default timeout applies.
func NewClient(ctx context.Context, baseURL string, sel Selection, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: httpClient, sel: sel, retry: DefaultRetryPolicy()}
	if _, ok := ctx.Deadline(); !ok && httpClient.Timeout == 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, metaTimeout)
		defer cancel()
	}
	resp, err := c.do(ctx, http.MethodGet, baseURL+"/v1/meta", nil)
	if err != nil {
		return nil, fmt.Errorf("httpapi: meta: %w", err)
	}
	defer resp.Body.Close()
	var meta metaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("httpapi: meta decode: %w", err)
	}
	c.k = meta.K
	c.bounds = geom.NewRect(geom.Pt(meta.MinX, meta.MinY), geom.Pt(meta.MaxX, meta.MaxY))
	// An absent metric field (pre-geodesic server) parses as Euclidean.
	c.metric, err = geo.ParseMetric(meta.Metric)
	if err != nil {
		return nil, fmt.Errorf("httpapi: meta: %w", err)
	}
	return c, nil
}

// Bounds implements core.Oracle.
func (c *Client) Bounds() geom.Rect { return c.bounds }

// K implements core.Oracle.
func (c *Client) K() int { return c.k }

// Metric is the distance metric the remote service advertised on
// /v1/meta (Euclidean for pre-geodesic servers). Distances in wire
// records are expressed in it, so estimators compiled for one metric
// must not run against a client reporting another.
func (c *Client) Metric() geo.Metric { return c.metric }

// QueryCount implements core.Oracle.
func (c *Client) QueryCount() int64 { return c.queries.Load() }

// get performs one wire query with the client's retry policy; the
// requests are built with ctx so the caller can cancel them in flight.
func (c *Client) get(ctx context.Context, endpoint string, p geom.Point) (*queryResponse, error) {
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(p.X, 'g', -1, 64))
	v.Set("y", strconv.FormatFloat(p.Y, 'g', -1, 64))
	if c.sel.Name != "" {
		v.Set("name", c.sel.Name)
	}
	if c.sel.Category != "" {
		v.Set("category", c.sel.Category)
	}
	resp, err := c.do(ctx, http.MethodGet, c.base+endpoint+"?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e := decodeError(resp)
		return nil, fmt.Errorf("httpapi: status %d: %s", resp.StatusCode, e.Error)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("httpapi: decode: %w", err)
	}
	c.queries.Add(1)
	// A degraded upstream answers 200 with the partial annotation in
	// the headers; reconstruct it so local and remote callers see the
	// same contract (records plus *lbs.PartialError).
	if pe := partialOfHeaders(resp.Header); pe != nil {
		return &out, pe
	}
	return &out, nil
}

// QueryLR implements core.Oracle. filter must be nil: selections are
// fixed per client (they travel as URL parameters; functional filters
// cannot cross the network).
func (c *Client) QueryLR(ctx context.Context, p geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	if filter != nil {
		return nil, ErrPerCallFilter
	}
	out, err := c.get(ctx, "/v1/lr", p)
	if err != nil && !lbs.IsPartial(err) {
		return nil, err
	}
	return lrOfWire(out.Results), err
}

// lrOfWire decodes wire records into LR result rows.
func lrOfWire(results []wireRecord) []lbs.LRRecord {
	recs := make([]lbs.LRRecord, len(results))
	for i, w := range results {
		rec := lbs.LRRecord{
			ID: w.ID, Name: w.Name, Category: w.Category,
			Attrs: w.Attrs, Tags: w.Tags,
		}
		if w.X != nil && w.Y != nil {
			rec.Loc = geom.Pt(*w.X, *w.Y)
		}
		if w.Dist != nil {
			rec.Dist = *w.Dist
		}
		recs[i] = rec
	}
	return recs
}

// QueryLNR implements core.Oracle (same filter restriction as QueryLR).
func (c *Client) QueryLNR(ctx context.Context, p geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	if filter != nil {
		return nil, ErrPerCallFilter
	}
	out, err := c.get(ctx, "/v1/lnr", p)
	if err != nil && !lbs.IsPartial(err) {
		return nil, err
	}
	return lnrOfWire(out.Results), err
}

// lnrOfWire decodes wire records into LNR result rows.
func lnrOfWire(results []wireRecord) []lbs.LNRRecord {
	recs := make([]lbs.LNRRecord, len(results))
	for i, w := range results {
		recs[i] = lbs.LNRRecord{
			ID: w.ID, Name: w.Name, Category: w.Category,
			Attrs: w.Attrs, Tags: w.Tags,
		}
	}
	return recs
}

// postBatch performs one batch POST and returns the decoded response
// with the answered count already folded into the client's local
// query counter.
func (c *Client) postBatch(ctx context.Context, endpoint string, pts []geom.Point) (*batchResponse, error) {
	req := batchRequest{
		Points:   make([]wirePoint, len(pts)),
		Name:     c.sel.Name,
		Category: c.sel.Category,
	}
	for i, p := range pts {
		req.Points[i] = wirePoint{X: p.X, Y: p.Y}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: batch encode: %w", err)
	}
	// Batch POSTs retry like GETs: a batch query is semantically
	// idempotent (same points, same answers), so replaying a failed
	// attempt is safe — at worst the lost attempt's budget charge is
	// paid again, the same exposure a per-point GET retry has.
	resp, err := c.do(ctx, http.MethodPost, c.base+endpoint, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e := decodeError(resp)
		return nil, fmt.Errorf("httpapi: batch status %d: %s", resp.StatusCode, e.Error)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("httpapi: batch decode: %w", err)
	}
	answered := int64(0)
	for _, a := range out.Answers {
		if a != nil {
			answered++
		}
	}
	c.queries.Add(answered)
	if pe := partialOfHeaders(resp.Header); pe != nil {
		return &out, pe
	}
	return &out, nil
}

// clientBatch is the decode shape shared by both client batch
// methods: answers realigned to the request points, nil holes
// preserved, Exhausted mapped back to lbs.ErrBudgetExhausted. Batches
// larger than the server's per-POST point cap are transparently split
// into sequential chunk requests, so callers may size batches freely
// (e.g. core.WithBatch larger than maxBatchPoints); a budget death in
// one chunk stops the remaining chunks, leaving their positions nil.
func clientBatch[T any](c *Client, ctx context.Context, endpoint string, pts []geom.Point,
	filter lbs.Filter, decode func([]wireRecord) []T) ([][]T, error) {

	if filter != nil {
		return nil, ErrPerCallFilter
	}
	if len(pts) == 0 {
		return nil, nil
	}
	out := make([][]T, len(pts))
	// Partial annotations from degraded upstream chunks accumulate and
	// ride back alongside the answers (nil unless some chunk degraded).
	var partial *lbs.PartialError
	for off := 0; off < len(pts); off += maxBatchPoints {
		end := off + maxBatchPoints
		if end > len(pts) {
			end = len(pts)
		}
		resp, err := c.postBatch(ctx, endpoint, pts[off:end])
		if pe, ok := lbs.AsPartial(err); ok {
			if partial == nil {
				partial = &lbs.PartialError{}
			}
			partial.Degraded += pe.Degraded
			partial.Dropped += pe.Dropped
			partial.Missing += pe.Missing
		} else if err != nil {
			if off > 0 && errors.Is(err, lbs.ErrBudgetExhausted) {
				return out, err
			}
			return nil, err
		}
		for i, a := range resp.Answers {
			if off+i >= len(pts) {
				break
			}
			if a == nil {
				continue
			}
			out[off+i] = decode(a.Results)
		}
		if resp.Exhausted {
			return out, lbs.ErrBudgetExhausted
		}
	}
	if partial != nil {
		return out, partial
	}
	return out, nil
}

// QueryLRBatch answers m location-returned queries in a single HTTP
// round-trip (the core.BatchOracle contract: index-aligned answers,
// nil for positions the server budget could not cover, alongside
// lbs.ErrBudgetExhausted).
func (c *Client) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	return clientBatch(c, ctx, "/v1/query/lr:batch", pts, filter, lrOfWire)
}

// QueryLNRBatch is the rank-only twin of QueryLRBatch.
func (c *Client) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	return clientBatch(c, ctx, "/v1/query/lnr:batch", pts, filter, lnrOfWire)
}
