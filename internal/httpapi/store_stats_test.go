package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/lbs"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestStatsStoreSection pins the /v1/stats store section through the
// full production stack (Instrumented -> Cached -> Service): the chain
// walk finds the storage engine wherever it sits, and a warm restart
// surfaces its recovery counters.
func TestStatsStoreSection(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	gen := func() *lbs.Database { return workload.USASchools(200, 3).DB }

	open := func(t *testing.T) (*store.Store, *lbs.CachedOracle, lbs.Querier) {
		st, err := store.Open(dir, store.Options{PageSize: 512, PoolPages: 8})
		if err != nil {
			t.Fatal(err)
		}
		db, _, err := st.OpenOrCreateDatabase(gen)
		if err != nil {
			t.Fatal(err)
		}
		svc := lbs.NewService(db, lbs.Options{K: 5})
		cache := lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 64, Quantum: 0.01})
		return st, cache, st.Instrument(cache)
	}

	getStats := func(t *testing.T, backend lbs.Querier) statsResponse {
		t.Helper()
		srv := httptest.NewServer(NewServer(backend))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Cold start: the pack was written, nothing recovered.
	st, cache, backend := open(t)
	if _, err := backend.QueryLR(ctx, backend.Bounds().Center(), nil); err != nil {
		t.Fatal(err)
	}
	out := getStats(t, backend)
	if out.Store == nil {
		t.Fatal("stats response has no store section")
	}
	if out.Store.PagesWritten == 0 {
		t.Fatalf("store section %+v: cold ingest wrote no pages?", out.Store)
	}
	if out.Cache == nil || out.Cache.Misses != 1 {
		t.Fatalf("cache stats lost behind the instrumented wrapper: %+v", out.Cache)
	}
	if err := st.SaveCache(cache); err != nil {
		t.Fatal(err)
	}

	// Warm restart: pages read back, cache entries restored, and both
	// visible through the same chain walk.
	st2, cache2, backend2 := open(t)
	n, err := st2.LoadCache(cache2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cache entries restored on warm restart")
	}
	out = getStats(t, backend2)
	if out.Store == nil || out.Store.PagesRead == 0 {
		t.Fatalf("warm restart read no pages: %+v", out.Store)
	}
	if out.Store.CacheRestored != uint64(n) {
		t.Fatalf("store section cache_restored = %d, want %d", out.Store.CacheRestored, n)
	}
	if out.Cache == nil || out.Cache.Restored != int64(n) {
		t.Fatalf("cache section restored = %+v, want %d", out.Cache, n)
	}
}
