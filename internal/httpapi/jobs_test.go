package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// jobsTestService builds a deterministic service over a seeded
// workload; calling it twice yields two independent but identical
// services.
func jobsTestService(t *testing.T, n int, budget int64) *lbs.Service {
	t.Helper()
	sc := workload.USASchools(n, 7)
	return lbs.NewService(sc.DB, lbs.Options{K: 5, Budget: budget})
}

func newJobsClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEstimateMatchesInProcessRun is the acceptance pin: a job
// submitted over the wire returns, for the same seed and budget,
// exactly the estimates of the equivalent in-process Run.
func TestEstimateMatchesInProcessRun(t *testing.T) {
	specs := []core.AggSpec{
		core.CountSpec(),
		core.SumSpec("enrollment"),
	}
	for _, method := range []string{jobs.MethodNNO, jobs.MethodLR} {
		t.Run(method, func(t *testing.T) {
			const budget = 800
			ctx := context.Background()

			// In-process reference run (its own identical service).
			plan, err := core.CompilePlan(specs)
			if err != nil {
				t.Fatal(err)
			}
			ref := jobsTestService(t, 250, budget)
			var est core.Estimator
			switch method {
			case jobs.MethodNNO:
				est = core.NewNNOBaseline(ref, core.NNOOptions{Seed: 42})
			case jobs.MethodLR:
				est = core.NewLRAggregator(ref, core.DefaultLROptions(42))
			}
			phys, err := core.Run(ctx, est, plan.Aggs)
			if err != nil {
				t.Fatal(err)
			}
			want := plan.Finish(phys)

			// The same run, submitted as a server-side job.
			srv := httptest.NewServer(NewServer(jobsTestService(t, 250, budget)))
			defer srv.Close()
			c := newJobsClient(t, srv)
			v, err := c.Estimate(ctx, jobs.Spec{Method: method, Seed: 42, Aggregates: specs})
			if err != nil {
				t.Fatal(err)
			}
			if v.State != jobs.StateRunning && v.State != jobs.StateDone {
				t.Fatalf("fresh job in state %s", v.State)
			}
			final, err := c.WaitJob(ctx, v.ID, 10*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if final.State != jobs.StateDone {
				t.Fatalf("job state %s (err %q), want done", final.State, final.Error)
			}
			if len(final.Results) != len(want) {
				t.Fatalf("got %d results, want %d", len(final.Results), len(want))
			}
			for i, r := range final.Results {
				if float64(r.Estimate) != want[i].Estimate {
					t.Errorf("%s: remote estimate %v != in-process %v",
						r.Name, float64(r.Estimate), want[i].Estimate)
				}
				if r.Samples != want[i].Samples {
					t.Errorf("%s: remote samples %d != in-process %d", r.Name, r.Samples, want[i].Samples)
				}
			}
		})
	}
}

// TestDeleteMidRunYieldsPartialResults is the second acceptance pin:
// DELETE on a running job returns partial Results with N > 0.
func TestDeleteMidRunYieldsPartialResults(t *testing.T) {
	srv := httptest.NewServer(NewServer(jobsTestService(t, 250, 0)))
	defer srv.Close()
	ctx := context.Background()
	c := newJobsClient(t, srv)
	v, err := c.Estimate(ctx, jobs.Spec{
		Method:     jobs.MethodNNO,
		Seed:       1,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    jobs.RunOptions{MaxSamples: 10_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, err := c.Job(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no sample completed in 20s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := c.CancelJob(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if len(got.Results) == 0 || got.Results[0].Samples == 0 {
		t.Fatalf("canceled job returned no partial results: %+v", got.Results)
	}
	// Idempotent: a second DELETE returns the same settled view.
	again, err := c.CancelJob(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != jobs.StateCanceled || again.Results[0].Samples != got.Results[0].Samples {
		t.Fatalf("second DELETE changed the view: %+v vs %+v", again, got)
	}
}

// TestJobTraceStreams pins the NDJSON trace: replay + follow to
// completion, ordered samples, decodable events.
func TestJobTraceStreams(t *testing.T) {
	srv := httptest.NewServer(NewServer(jobsTestService(t, 250, 0)))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := newJobsClient(t, srv)
	v, err := c.Estimate(ctx, jobs.Spec{
		Method:     jobs.MethodNNO,
		Seed:       3,
		Aggregates: []core.AggSpec{core.CountSpec(), core.SumSpec("enrollment")},
		Options:    jobs.RunOptions{MaxSamples: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []jobs.TraceEvent
	if err := c.FollowJobTrace(ctx, v.ID, func(e jobs.TraceEvent) error {
		events = append(events, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 60 {
		t.Fatalf("got %d trace events, want 60 (30 samples × 2 aggregates)", len(events))
	}
	names := map[string]int{}
	for _, e := range events {
		names[e.Agg]++
		if e.Samples < 1 || e.Samples > 30 {
			t.Fatalf("event with samples=%d out of range", e.Samples)
		}
	}
	if names["COUNT(*)"] != 30 || names["SUM(enrollment)"] != 30 {
		t.Fatalf("unexpected per-aggregate event counts: %v", names)
	}
}

// TestEstimateRejectsMalformedSpecs pins the 400 path, including
// malformed predicate trees.
func TestEstimateRejectsMalformedSpecs(t *testing.T) {
	srv := httptest.NewServer(NewServer(jobsTestService(t, 50, 0)))
	defer srv.Close()
	bodies := []string{
		`{`, // not JSON
		`{"method":"warp","aggregates":[{"kind":"count"}]}`,
		`{"method":"lr","aggregates":[]}`,
		`{"method":"lr","aggregates":[{"kind":"count","where":{"op":"between"}}]}`,
		`{"method":"lr","aggregates":[{"kind":"count","where":{"op":"and"}}]}`,
		`{"method":"lr","aggregates":[{"kind":"sum"}]}`,
	}
	for _, body := range bodies {
		resp, err := http.Post(srv.URL+"/v1/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Unknown job id → 404.
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestStatsEndpoint pins /v1/stats over a cached backend: query
// counts, remaining budget, cache counters and job counts.
func TestStatsEndpoint(t *testing.T) {
	svc := jobsTestService(t, 100, 500)
	cache := lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 64})
	srv := httptest.NewServer(NewServer(cache))
	defer srv.Close()
	ctx := context.Background()
	c := newJobsClient(t, srv)

	// Two identical queries: one miss (charged), one hit (free).
	if _, err := c.QueryLR(ctx, svc.Bounds().Min, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryLR(ctx, svc.Bounds().Min, nil); err != nil {
		t.Fatal(err)
	}
	// One finished job.
	v, err := c.Estimate(ctx, jobs.Spec{
		Method:     jobs.MethodNNO,
		Seed:       9,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    jobs.RunOptions{MaxSamples: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, v.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries         int64 `json:"queries"`
		BudgetRemaining int64 `json:"budget_remaining"`
		Cache           *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Jobs map[string]int `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Errorf("stats.queries = 0, want > 0")
	}
	if stats.BudgetRemaining != 500-stats.Queries {
		t.Errorf("budget_remaining %d, want %d", stats.BudgetRemaining, 500-stats.Queries)
	}
	if stats.Cache == nil {
		t.Fatalf("stats.cache missing over a CachedOracle backend")
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses < 1 {
		t.Errorf("cache counters hits=%d misses=%d, want ≥1 each", stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Jobs["done"] != 1 {
		t.Errorf("jobs done = %d, want 1 (%v)", stats.Jobs["done"], stats.Jobs)
	}
}
