package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func testService(n int, k int, budget int64, seed int64) *lbs.Service {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 4, UniformFrac: 0.3, Seed: seed,
	})
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		cat := "cafe"
		if i%2 == 0 {
			cat = "school"
		}
		tuples[i] = lbs.Tuple{
			ID: int64(i + 1), Loc: p, Category: cat,
			Attrs: map[string]float64{"v": float64(i % 5)},
			Tags:  map[string]string{"flag": map[bool]string{true: "y", false: "n"}[i%3 == 0]},
		}
	}
	return lbs.NewService(lbs.NewDatabase(bounds, tuples), lbs.Options{K: k, Budget: budget})
}

func TestMetaRoundTrip(t *testing.T) {
	svc := testService(20, 4, 0, 1)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 4 {
		t.Errorf("k: %d", c.K())
	}
	if c.Bounds() != svc.Bounds() {
		t.Errorf("bounds: %+v", c.Bounds())
	}
}

func TestQueryLRRoundTrip(t *testing.T) {
	svc := testService(50, 3, 0, 2)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(50, 50)
	got, err := c.QueryLR(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.QueryLR(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || !got[i].Loc.ApproxEq(want[i].Loc, 1e-9) {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], want[i])
		}
		if got[i].Attrs["v"] != want[i].Attrs["v"] || got[i].Tags["flag"] != want[i].Tags["flag"] {
			t.Fatalf("attrs lost over the wire: %+v", got[i])
		}
	}
	if c.QueryCount() != 1 {
		t.Errorf("client query count: %d", c.QueryCount())
	}
}

func TestQueryLNRHidesLocations(t *testing.T) {
	svc := testService(30, 3, 0, 3)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, _ := NewClient(context.Background(), ts.URL, Selection{}, nil)
	got, err := c.QueryLNR(context.Background(), geom.Pt(30, 30), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("results: %d", len(got))
	}
	// Wire check: the LNR endpoint must not include coordinates.
	resp, err := ts.Client().Get(ts.URL + "/v1/lnr?x=30&y=30")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `"x"`) || strings.Contains(string(body), `"dist"`) {
		t.Errorf("LNR response leaks location fields: %s", body)
	}
}

func TestSelectionOverWire(t *testing.T) {
	svc := testService(60, 10, 0, 4)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, _ := NewClient(context.Background(), ts.URL, Selection{Category: "school"}, nil)
	got, err := c.QueryLR(context.Background(), geom.Pt(50, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	for _, r := range got {
		if r.Category != "school" {
			t.Fatalf("selection leak: %+v", r)
		}
	}
}

func TestPerCallFilterRejected(t *testing.T) {
	svc := testService(10, 2, 0, 5)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, _ := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if _, err := c.QueryLR(context.Background(), geom.Pt(1, 1), func(*lbs.Tuple) bool { return true }); err == nil {
		t.Errorf("functional filter should be rejected")
	}
	if _, err := c.QueryLNR(context.Background(), geom.Pt(1, 1), func(*lbs.Tuple) bool { return true }); err == nil {
		t.Errorf("functional filter should be rejected (LNR)")
	}
}

func TestBudgetExhaustionOverWire(t *testing.T) {
	svc := testService(10, 2, 3, 6)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, _ := NewClient(context.Background(), ts.URL, Selection{}, nil)
	for i := 0; i < 3; i++ {
		if _, err := c.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	_, err := c.QueryLR(context.Background(), geom.Pt(1, 1), nil)
	if !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted over the wire, got %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	svc := testService(10, 2, 0, 7)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/lr?x=abc&y=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad x: status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/lr")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing coords: status %d", resp.StatusCode)
	}
}

// TestEndToEndEstimationOverHTTP is the headline integration test: the
// full LR-LBS-AGG estimator running against a service it can only
// reach over the network.
func TestEndToEndEstimationOverHTTP(t *testing.T) {
	svc := testService(80, 5, 0, 8)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	client, err := NewClient(context.Background(), ts.URL, Selection{}, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	agg := core.NewLRAggregator(client, core.DefaultLROptions(9))
	res, err := agg.Run(context.Background(), []core.Aggregate{core.Count()}, core.WithMaxSamples(150))
	if err != nil {
		t.Fatal(err)
	}
	truth := 80.0
	if res[0].StdErr > 0 {
		z := (res[0].Estimate - truth) / res[0].StdErr
		if z > 4 || z < -4 {
			t.Errorf("HTTP estimation off: %v (z=%v)", res[0].Estimate, z)
		}
	}
	if client.QueryCount() == 0 {
		t.Errorf("no queries counted on the client")
	}
	// LNR over HTTP as well.
	lnr := core.NewLNRAggregator(client, core.LNROptions{Seed: 10})
	resL, err := lnr.Run(context.Background(), []core.Aggregate{core.Count()}, core.WithMaxSamples(15))
	if err != nil {
		t.Fatal(err)
	}
	if resL[0].Samples != 15 {
		t.Errorf("LNR over HTTP: %+v", resL[0])
	}
}

// TestClientContextCancellation: both the construction-time meta probe
// and in-flight queries must honor context cancellation.
func TestClientContextCancellation(t *testing.T) {
	svc := testService(20, 3, 0, 9)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewClient(canceled, ts.URL, Selection{}, nil); err == nil {
		t.Fatal("NewClient with canceled context succeeded")
	}

	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryLR(canceled, geom.Pt(1, 1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v, want context.Canceled", err)
	}
	if _, err := c.QueryLR(context.Background(), geom.Pt(1, 1), nil); err != nil {
		t.Fatalf("live query after canceled one: %v", err)
	}
}
