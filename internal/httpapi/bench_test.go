package httpapi

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// benchService is a lean service for throughput runs: plain located
// tuples without attribute maps, so the wire cost per record models a
// minimal LBS answer and the measurement isolates per-request versus
// per-query overhead.
func benchService(n, k int) *lbs.Service {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 6, UniformFrac: 0.3, Seed: 42,
	})
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: p, Category: "poi"}
	}
	return lbs.NewService(lbs.NewDatabase(bounds, tuples), lbs.Options{K: k})
}

// BenchmarkServeThroughput measures server throughput (answered
// queries per second) under 8 concurrent clients, comparing the
// per-point GET path (batch=1) against the batched POST path. The
// per-request overhead — connection handling, JSON framing, budget
// and limiter synchronization — is paid once per batch instead of
// once per query, which is the whole argument for the batch endpoint
// under heavy traffic (run `make bench-throughput`).
func BenchmarkServeThroughput(b *testing.B) {
	const clients = 8
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			svc := benchService(2000, 5)
			ts := httptest.NewServer(NewServer(svc))
			defer ts.Close()

			// One client per worker, sharing the server.
			cs := make([]*Client, clients)
			for i := range cs {
				c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
				if err != nil {
					b.Fatal(err)
				}
				cs[i] = c
			}
			bounds := svc.Bounds()
			perClient := b.N/clients + 1

			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					c := cs[w]
					issued := 0
					for issued < perClient {
						m := batch
						if rem := perClient - issued; rem < m {
							m = rem
						}
						pts := make([]geom.Point, m)
						for j := range pts {
							pts[j] = geom.Pt(
								bounds.Min.X+rng.Float64()*(bounds.Max.X-bounds.Min.X),
								bounds.Min.Y+rng.Float64()*(bounds.Max.Y-bounds.Min.Y),
							)
						}
						var err error
						if m == 1 {
							_, err = c.QueryLR(context.Background(), pts[0], nil)
						} else {
							_, err = c.QueryLRBatch(context.Background(), pts, nil)
						}
						if err != nil {
							b.Error(err)
							return
						}
						issued += m
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(svc.QueryCount())/elapsed.Seconds(), "queries/s")
			b.ReportMetric(0, "ns/op") // queries/s is the meaningful metric here
		})
	}
}
