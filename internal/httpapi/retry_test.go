package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// flakyProxy fails the first n requests per endpoint predicate with
// the given status, then delegates to the real server.
type flakyProxy struct {
	inner    http.Handler
	failures atomic.Int64 // remaining failures
	status   int
	body     string
	attempts atomic.Int64
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/meta" { // let construction through
		f.inner.ServeHTTP(w, r)
		return
	}
	f.attempts.Add(1)
	if f.failures.Add(-1) >= 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		_, _ = w.Write([]byte(f.body))
		return
	}
	f.inner.ServeHTTP(w, r)
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func retryTestBackend(t *testing.T) *lbs.Service {
	t.Helper()
	sc := workload.USASchools(60, 5)
	return lbs.NewService(sc.DB, lbs.Options{K: 3})
}

func TestClientRetriesTransient5xx(t *testing.T) {
	proxy := &flakyProxy{inner: NewServer(retryTestBackend(t)), status: http.StatusServiceUnavailable, body: `{"error":"boom"}`}
	proxy.failures.Store(2)
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry())
	recs, err := c.QueryLR(context.Background(), geom.Pt(100, 100), nil)
	if err != nil {
		t.Fatalf("query should survive two 503s: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	if got := proxy.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (2 failures + 1 success)", got)
	}
}

func TestClientRetriesTransient429ThenGivesUp(t *testing.T) {
	// A 429 without the budget_exhausted code is transient rate
	// limiting: retried up to MaxAttempts, then surfaced as an error
	// that is NOT ErrBudgetExhausted.
	proxy := &flakyProxy{inner: NewServer(retryTestBackend(t)), status: http.StatusTooManyRequests, body: `{"error":"slow down"}`}
	proxy.failures.Store(1000)
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry())
	_, err = c.QueryLR(context.Background(), geom.Pt(100, 100), nil)
	if err == nil {
		t.Fatal("expected an error after exhausting retries")
	}
	if errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("transient 429 must not masquerade as budget exhaustion: %v", err)
	}
	if got := proxy.attempts.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

func TestClientDoesNotRetryBudgetExhaustion(t *testing.T) {
	// A real spent budget is permanent: exactly one attempt, mapped to
	// ErrBudgetExhausted.
	svc := lbs.NewService(workload.USASchools(60, 5).DB, lbs.Options{K: 3, Budget: 1})
	counting := &flakyProxy{inner: NewServer(svc)} // failures=0: pure pass-through counter
	srv := httptest.NewServer(counting)
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry())
	ctx := context.Background()
	if _, err := c.QueryLR(ctx, geom.Pt(100, 100), nil); err != nil {
		t.Fatalf("first query (within budget): %v", err)
	}
	before := counting.attempts.Load()
	if _, err := c.QueryLR(ctx, geom.Pt(200, 200), nil); !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("over-budget query returned %v, want ErrBudgetExhausted", err)
	}
	if got := counting.attempts.Load() - before; got != 1 {
		t.Errorf("budget-exhausted query retried: %d attempts, want 1", got)
	}
}

func TestClientRetriesBatchPOST(t *testing.T) {
	proxy := &flakyProxy{inner: NewServer(retryTestBackend(t)), status: http.StatusBadGateway, body: `{"error":"upstream"}`}
	proxy.failures.Store(1)
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastRetry())
	pts := []geom.Point{{X: 100, Y: 100}, {X: 500, Y: 500}}
	answers, err := c.QueryLRBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatalf("batch should survive a 502: %v", err)
	}
	if len(answers) != 2 || answers[0] == nil || answers[1] == nil {
		t.Fatalf("batch answers incomplete: %v", answers)
	}
}

func TestRetryBackoffBoundedByContext(t *testing.T) {
	proxy := &flakyProxy{inner: NewServer(retryTestBackend(t)), status: http.StatusServiceUnavailable, body: `{"error":"boom"}`}
	proxy.failures.Store(1000)
	srv := httptest.NewServer(proxy)
	defer srv.Close()
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.QueryLR(ctx, geom.Pt(100, 100), nil)
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ignored the context deadline: took %v", elapsed)
	}
}
