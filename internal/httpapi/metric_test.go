package httpapi

// Metric round-trip over the wire: /v1/meta and /v1/stats advertise
// the backend's metric (probed through the Wrapper chain), NewClient
// adopts it, and a job spec pinned to a different metric is refused —
// client-side before any network round-trip, and server-side with a
// 400 for clients that skip the check.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func geodesicTestService(n int, k int) *lbs.Service {
	sc := workload.GeoUS(n, 3, workload.DensityGauss)
	return lbs.NewService(sc.DB, lbs.Options{K: k, Metric: geo.Haversine})
}

func TestMetricRoundTripAndMismatch(t *testing.T) {
	svc := geodesicTestService(200, 3)
	// Wrap the service so the metric probe has to walk the chain.
	cache := lbs.NewCachedOracle(svc, lbs.CacheOptions{Metric: geo.Haversine})
	ts := httptest.NewServer(NewServer(cache))
	defer ts.Close()
	ctx := context.Background()

	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Metric() != geo.Haversine {
		t.Fatalf("client metric = %v, want haversine", c.Metric())
	}

	// /v1/meta and /v1/stats both name it.
	for _, path := range []string{"/v1/meta", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Metric string `json:"metric"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Metric != "haversine" {
			t.Fatalf("%s metric = %q, want haversine", path, body.Metric)
		}
	}

	// Client-side refusal happens before any request is sent.
	_, err = c.Estimate(ctx, jobs.Spec{Metric: "euclidean"})
	if !errors.Is(err, ErrMetricMismatch) {
		t.Fatalf("Estimate err = %v, want ErrMetricMismatch", err)
	}

	// A client that skips the check gets a 400 with the reason.
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"metric":"euclidean"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var er struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "metric") {
		t.Fatalf("error %q does not name the metric", er.Error)
	}

	// A matching pinned metric passes the gate (the spec is otherwise
	// empty, so job creation rejects it — with a spec error, not the
	// metric gate's).
	_, err = c.Estimate(ctx, jobs.Spec{Metric: "haversine"})
	if errors.Is(err, ErrMetricMismatch) {
		t.Fatal("matching metric refused")
	}

	// An Euclidean server still reports its metric and accepts
	// unpinned specs from geodesic-unaware clients.
	plain := lbs.NewService(workload.USASchools(100, 5).DB, lbs.Options{K: 3})
	ts2 := httptest.NewServer(NewServer(plain))
	defer ts2.Close()
	c2, err := NewClient(ctx, ts2.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Metric() != geo.Euclidean {
		t.Fatalf("plain client metric = %v, want euclidean", c2.Metric())
	}
}

// TestMetricGeodesicWireDistances pins the unit on the wire: a
// geodesic server reports great-circle km in record distances,
// matching a direct in-process query bit for bit.
func TestMetricGeodesicWireDistances(t *testing.T) {
	svc := geodesicTestService(300, 5)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	ctx := context.Background()
	c, err := NewClient(ctx, ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := geodesicTestService(300, 5)
	q := geom.Pt(-100, 40)
	want, err := ref.QueryLR(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.QueryLR(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("record %d: got (%d, %v), want (%d, %v)",
				i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}
