package httpapi

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// TestBatchRoundTrip: a batch POST answers the same records as
// per-point GETs and costs the same number of server-side queries.
func TestBatchRoundTrip(t *testing.T) {
	svc := testService(50, 3, 0, 2)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pts := []geom.Point{geom.Pt(10, 10), geom.Pt(90, 90), geom.Pt(50, 50)}

	answers, err := c.QueryLRBatch(ctx, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(pts) {
		t.Fatalf("answers: %d, want %d", len(answers), len(pts))
	}
	ref := testService(50, 3, 0, 2)
	for i, p := range pts {
		want, err := ref.QueryLR(ctx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers[i]) != len(want) {
			t.Fatalf("point %d: %d records, want %d", i, len(answers[i]), len(want))
		}
		for j := range want {
			if answers[i][j].ID != want[j].ID || answers[i][j].Loc != want[j].Loc {
				t.Errorf("point %d record %d: %+v != %+v", i, j, answers[i][j], want[j])
			}
		}
	}
	if svc.QueryCount() != int64(len(pts)) {
		t.Errorf("server QueryCount = %d, want %d", svc.QueryCount(), len(pts))
	}
	if c.QueryCount() != int64(len(pts)) {
		t.Errorf("client QueryCount = %d, want %d", c.QueryCount(), len(pts))
	}

	// LNR twin.
	lnr, err := c.QueryLNRBatch(ctx, pts[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lnr) != 2 || len(lnr[0]) == 0 {
		t.Fatalf("LNR batch: %+v", lnr)
	}
}

// TestBatchSelectionPassThrough: the declarative filter rides in the
// batch body.
func TestBatchSelectionPassThrough(t *testing.T) {
	svc := testService(60, 5, 0, 3)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{Category: "school"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := c.QueryLRBatch(context.Background(), []geom.Point{geom.Pt(50, 50)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[0]) == 0 {
		t.Fatal("no results")
	}
	for _, r := range answers[0] {
		if r.Category != "school" {
			t.Errorf("selection leaked %q", r.Category)
		}
	}
	// Per-call functional filters cannot cross the wire.
	if _, err := c.QueryLRBatch(context.Background(), []geom.Point{geom.Pt(1, 1)}, lbs.CategoryFilter("cafe")); err == nil {
		t.Error("per-call filter should be rejected")
	}
}

// TestBatchBudgetExhaustion: partial batches surface the covered
// prefix plus ErrBudgetExhausted; a fully dead budget behaves like
// the single-query path (429 → ErrBudgetExhausted).
func TestBatchBudgetExhaustion(t *testing.T) {
	svc := testService(50, 2, 4, 5)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{geom.Pt(10, 10), geom.Pt(20, 20), geom.Pt(30, 30), geom.Pt(40, 40), geom.Pt(50, 50), geom.Pt(60, 60)}
	answers, err := c.QueryLRBatch(context.Background(), pts, nil)
	if !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	for i := 0; i < 4; i++ {
		if answers[i] == nil {
			t.Errorf("answer %d nil, want served", i)
		}
	}
	for i := 4; i < 6; i++ {
		if answers[i] != nil {
			t.Errorf("answer %d served beyond budget", i)
		}
	}
	if c.QueryCount() != 4 {
		t.Errorf("client QueryCount = %d, want 4", c.QueryCount())
	}
	// Budget now fully dead.
	if _, err := c.QueryLRBatch(context.Background(), pts[:2], nil); !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Errorf("dead-budget err = %v, want ErrBudgetExhausted", err)
	}
}

// TestBatchEndpointValidation: malformed bodies, GETs and oversized
// batches are rejected with 400/ error statuses.
func TestBatchEndpointValidation(t *testing.T) {
	svc := testService(10, 2, 0, 7)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/query/lr:batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, body := range []string{"", "{", `{"points":[]}`} {
		resp := post(body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Oversized batch.
	var sb bytes.Buffer
	sb.WriteString(`{"points":[`)
	for i := 0; i <= maxBatchPoints; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"x":1,"y":2}`)
	}
	sb.WriteString(`]}`)
	resp := post(sb.String())
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d, want 400", resp.StatusCode)
	}
	// GET on a batch endpoint.
	getResp, err := http.Get(ts.URL + "/v1/query/lr:batch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET batch: status %d, want 400", getResp.StatusCode)
	}
	if svc.QueryCount() != 0 {
		t.Errorf("invalid requests consumed %d queries", svc.QueryCount())
	}
}

// TestClientBatchChunksOversize: a client batch beyond the server's
// per-POST point cap is split transparently into chunked requests
// instead of failing with a 400.
func TestClientBatchChunksOversize(t *testing.T) {
	svc := testService(40, 2, 0, 9)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := maxBatchPoints + 50
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i%100), float64(i%100))
	}
	answers, err := c.QueryLRBatch(context.Background(), pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != n {
		t.Fatalf("answers: %d, want %d", len(answers), n)
	}
	for i, a := range answers {
		if a == nil {
			t.Fatalf("answer %d nil", i)
		}
	}
	if svc.QueryCount() != int64(n) {
		t.Errorf("server QueryCount = %d, want %d", svc.QueryCount(), n)
	}
}

// TestClientBatchChunkBudgetDeath: when the budget dies in a later
// chunk, earlier chunks' answers are preserved alongside the error.
func TestClientBatchChunkBudgetDeath(t *testing.T) {
	budget := int64(maxBatchPoints + 10)
	svc := testService(40, 1, budget, 3)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := maxBatchPoints + 30
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i%100), float64(i%100))
	}
	answers, err := c.QueryLRBatch(context.Background(), pts, nil)
	if !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	served := 0
	for _, a := range answers {
		if a != nil {
			served++
		}
	}
	if served != int(budget) {
		t.Errorf("served %d answers, want %d (the budget)", served, budget)
	}
	if answers[0] == nil || answers[n-1] != nil {
		t.Errorf("budget death alignment wrong: first %v, last %v", answers[0] != nil, answers[n-1] != nil)
	}
}

// TestRemoteBatchedEstimationRun drives a full estimator through the
// remote batch path: NNO with WithBatch over an httpapi.Client issues
// one POST per seed batch and per probe set instead of one GET per
// query.
func TestRemoteBatchedEstimationRun(t *testing.T) {
	svc := testService(60, 1, 0, 11)
	inner := NewServer(svc)
	requests := 0
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nno := core.NewNNOBaseline(c, core.NNOOptions{Seed: 4, ProbesPerCell: 10})
	res, err := nno.Run(context.Background(), []core.Aggregate{core.Count()},
		core.WithMaxSamples(20), core.WithBatch(10))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 20 {
		t.Fatalf("samples = %d, want 20", res[0].Samples)
	}
	queries := svc.QueryCount()
	if int64(requests) >= queries {
		t.Errorf("batching saved nothing: %d HTTP requests for %d queries", requests, queries)
	}
	t.Logf("%d HTTP requests served %d queries (%.1f queries/request)",
		requests, queries, float64(queries)/float64(requests))
}

// TestServerOverCachedBackend: NewServer accepts a CachedOracle
// gateway; repeated remote queries hit the cache instead of the
// budget.
func TestServerOverCachedBackend(t *testing.T) {
	svc := testService(30, 2, 2, 13)
	cache := lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 128})
	ts := httptest.NewServer(NewServer(cache))
	defer ts.Close()
	c, err := NewClient(context.Background(), ts.URL, Selection{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(42, 42)
	for i := 0; i < 5; i++ {
		if _, err := c.QueryLR(context.Background(), p, nil); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
	if svc.QueryCount() != 1 {
		t.Errorf("service answered %d times, want 1 (cache served the rest)", svc.QueryCount())
	}
	if st := cache.Stats(); st.Hits != 4 {
		t.Errorf("cache hits = %d, want 4", st.Hits)
	}
}
