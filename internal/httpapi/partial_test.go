package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// degradedFront builds an HTTP server over a 2-shard federation with
// one member killed and its breaker already open, so every query owned
// by the corpse's region answers degraded. Returns the server, a
// client, and the injectors.
func degradedFront(t *testing.T) (*httptest.Server, *Client, *shard.Router, []*faults.Injector) {
	t.Helper()
	db := workload.USASchools(120, 23).DB
	res := shard.Resilience{BreakerThreshold: 1, BreakerCooldown: time.Hour, Seed: 1}
	inj := make([]*faults.Injector, 2)
	router, err := shard.FromPartsWrapped(shard.Partition(db, 2), lbs.Options{K: 20}, res,
		func(i int, q lbs.Querier) lbs.Querier {
			inj[i] = faults.New(q, faults.Spec{Seed: int64(i)})
			return inj[i]
		})
	if err != nil {
		t.Fatal(err)
	}
	inj[1].Kill()
	// Trip the breaker with the crisp owner failure, so subsequent
	// queries degrade instead of failing.
	pokePt := router.Stats().Shards[1].Region.Center()
	_, _ = router.QueryLR(context.Background(), pokePt, nil)

	srv := httptest.NewServer(NewServer(router))
	t.Cleanup(srv.Close)
	c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return srv, c, router, inj
}

// TestPartialAnswerHeadersRoundTrip pins the wire contract for
// degraded answers: the server responds 200 with the partial counters
// in headers, and the typed client reconstructs the same
// *lbs.PartialError alongside the usable records — on the single and
// batch paths.
func TestPartialAnswerHeadersRoundTrip(t *testing.T) {
	srv, c, router, _ := degradedFront(t)
	ctx := context.Background()
	q := router.Stats().Shards[1].Region.Center()

	// Wire shape: 200 + annotation headers.
	resp, err := http.Get(srv.URL + "/v1/lr?x=" +
		jsonNum(q.X) + "&y=" + jsonNum(q.Y))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded answer status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(headerPartialDegraded) != "1" {
		t.Fatalf("missing %s header: %v", headerPartialDegraded, resp.Header)
	}

	// Typed client: records plus the reconstructed annotation.
	recs, err := c.QueryLR(ctx, q, nil)
	pe, ok := lbs.AsPartial(err)
	if !ok {
		t.Fatalf("client error %v, want partial annotation", err)
	}
	if len(recs) == 0 || pe.Degraded != 1 || pe.Missing == 0 {
		t.Fatalf("client round-trip: %d recs, %+v", len(recs), pe)
	}

	// Batch path: per-chunk annotations accumulate.
	pts := []geom.Point{q, q, router.Bounds().Min}
	out, err := c.QueryLRBatch(ctx, pts, nil)
	pe, ok = lbs.AsPartial(err)
	if !ok {
		t.Fatalf("batch error %v, want partial annotation", err)
	}
	if pe.Degraded < 2 {
		t.Fatalf("batch annotation %+v, want ≥ 2 degraded", pe)
	}
	for i, recs := range out {
		if recs == nil {
			t.Fatalf("batch position %d dropped; degraded answers must still arrive", i)
		}
	}
}

// TestStatsReportsHealthAndFaults pins the /v1/stats health section:
// breaker state per shard (open, then half-open once the cooldown
// elapses), partial-answer and resilience counters, and the injected
// fault counters chain-walked from the member injectors.
func TestStatsReportsHealthAndFaults(t *testing.T) {
	db := workload.USASchools(120, 29).DB
	res := shard.Resilience{BreakerThreshold: 1, BreakerCooldown: 100 * time.Millisecond, Seed: 1}
	inj := make([]*faults.Injector, 2)
	router, err := shard.FromPartsWrapped(shard.Partition(db, 2), lbs.Options{K: 20}, res,
		func(i int, q lbs.Querier) lbs.Querier {
			inj[i] = faults.New(q, faults.Spec{Seed: int64(i)})
			return inj[i]
		})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(router))
	defer srv.Close()

	getStats := func() statsResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Kill member 1, fail its owned query (trips the breaker), then
	// answer one degraded query through the HTTP front.
	inj[1].Kill()
	deadPt := router.Stats().Shards[1].Region.Center()
	_, _ = router.QueryLR(context.Background(), deadPt, nil)
	resp, err := http.Get(srv.URL + "/v1/lr?x=" + jsonNum(deadPt.X) + "&y=" + jsonNum(deadPt.Y))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	st := getStats()
	if st.Federation == nil || len(st.Federation.Shards) != 2 {
		t.Fatalf("federation stats: %+v", st.Federation)
	}
	if got := st.Federation.Shards[1].State; got != shard.BreakerOpen {
		t.Fatalf("shard 1 state %q, want open", got)
	}
	if st.Federation.Partial == 0 {
		t.Fatalf("federation partial counter empty: %+v", st.Federation)
	}
	if st.PartialAnswers == 0 {
		t.Fatal("server partial_answers counter empty")
	}
	if st.Faults == nil || st.Faults.DownCalls == 0 {
		t.Fatalf("fault injector stats not chain-walked: %+v", st.Faults)
	}

	// Cooldown elapses with no traffic: the health section shows
	// half-open — the observable recovery signal.
	time.Sleep(res.BreakerCooldown + 20*time.Millisecond)
	if got := getStats().Federation.Shards[1].State; got != shard.BreakerHalfOpen {
		t.Fatalf("after cooldown: state %q, want half-open", got)
	}

	// Revive + one successful probe closes it again.
	inj[1].Revive()
	if _, err := router.QueryLR(context.Background(), router.Bounds().Center(), nil); err != nil {
		t.Fatal(err)
	}
	if got := getStats().Federation.Shards[1].State; got != shard.BreakerClosed {
		t.Fatalf("after recovery: state %q, want closed", got)
	}
}

// jsonNum formats a float for a query string.
func jsonNum(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}
