package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/geo"
	"repro/internal/jobs"
)

// ErrMetricMismatch is returned by Estimate when a spec pinned to a
// metric is submitted through a client whose server advertises a
// different one; the refusal is local, before any network round-trip.
var ErrMetricMismatch = errors.New("httpapi: spec compiled for a different metric than the server runs")

// decodeView decodes a jobs.View response, treating non-2xx statuses
// as errors.
func decodeView(resp *http.Response) (*jobs.View, error) {
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		e := decodeError(resp)
		return nil, fmt.Errorf("httpapi: job status %d: %s", resp.StatusCode, e.Error)
	}
	var v jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("httpapi: job decode: %w", err)
	}
	return &v, nil
}

// Estimate submits a declarative estimation job (POST /v1/estimate)
// and returns its initial view; the job runs server-side. Batch many
// aggregates into one spec where possible: the server plans the batch
// as shared sample streams with fused aggregates (core.PlanBatch), so
// N related aggregates cost far less than N jobs; the returned views
// carry per-aggregate results and the compiled plan. Submission
// is not idempotent, so failures that may have created a job (5xx,
// transport errors) are never retried — wrap it yourself if a
// duplicate job is acceptable on your gateway. The one exception is a
// capacity 429 (code=jobs_exhausted): the server provably created
// nothing, the condition clears as running jobs settle, so the client
// waits it out with the policy's backoff. A budget-exhausted 429 is
// permanent and surfaces immediately; errors.Is(err,
// jobs.ErrTableFull) detects a capacity refusal that outlasted every
// attempt.
func (c *Client) Estimate(ctx context.Context, spec jobs.Spec) (*jobs.View, error) {
	if spec.Metric != "" {
		m, err := geo.ParseMetric(spec.Metric)
		if err != nil {
			return nil, fmt.Errorf("httpapi: estimate: %w", err)
		}
		if m != c.metric {
			return nil, fmt.Errorf("%w: spec %s, server %s", ErrMetricMismatch, m, c.metric)
		}
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("httpapi: estimate encode: %w", err)
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(ctx, http.MethodPost, c.base+"/v1/estimate", body)
		if err != nil {
			if errors.Is(err, jobs.ErrTableFull) && attempt+1 < attempts {
				if serr := sleepCtx(ctx, c.retry.backoff(attempt+1)); serr != nil {
					return nil, fmt.Errorf("httpapi: estimate: %w (after %v)", serr, err)
				}
				continue
			}
			return nil, err
		}
		return decodeView(resp)
	}
}

// Job fetches a job's current view (GET /v1/jobs/{id}), retrying
// transient failures per the client's policy.
func (c *Client) Job(ctx context.Context, id string) (*jobs.View, error) {
	resp, err := c.do(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return decodeView(resp)
}

// CancelJob cancels a running job (DELETE /v1/jobs/{id}) and returns
// its settled view, whose Results hold the partial estimates of the
// samples completed before the cancel. Canceling is idempotent
// (deleting a finished job returns its final view), so transient
// failures retry like GETs.
func (c *Client) CancelJob(ctx context.Context, id string) (*jobs.View, error) {
	resp, err := c.do(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return decodeView(resp)
}

// FollowJobTrace streams a job's NDJSON trace (GET
// /v1/jobs/{id}/trace), invoking fn once per event in order, from the
// job's first sample until it settles, fn returns an error, or ctx is
// done. Connection establishment retries per the client's policy; a
// stream broken mid-flight surfaces as an error (re-calling replays
// from the start).
func (c *Client) FollowJobTrace(ctx context.Context, id string, fn func(jobs.TraceEvent) error) error {
	resp, err := c.do(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e := decodeError(resp)
		return fmt.Errorf("httpapi: trace status %d: %s", resp.StatusCode, e.Error)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e jobs.TraceEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("httpapi: trace decode: %w", err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("httpapi: trace stream: %w", err)
	}
	return nil
}

// WaitJob polls a job until it settles (every poll interval; default
// 250 ms when poll ≤ 0) and returns its final view.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*jobs.View, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.State.Finished() {
			return v, nil
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return nil, err
		}
	}
}
