package httpapi

// Streaming ingest: mutations over the wire for live backends.
//
//	POST /v1/tuples:stream    NDJSON ops in → NDJSON acks out
//
// The request body is a stream of mutation ops, one JSON object per
// line:
//
//	{"op":"insert","id":9001,"x":12.5,"y":-3.25,"name":"...","category":"...","attrs":{...},"tags":{...}}
//	{"op":"delete","id":9001}
//	{"op":"move","id":17,"x":13.0,"y":-2.75}
//
// The response is one ack per op, in order, flushed as each op
// applies:
//
//	{"seq":0,"ok":true,"epoch":412}
//	{"seq":1,"ok":false,"epoch":412,"error":"live: unknown tuple ID"}
//
// seq is the 0-based position of the op in the request stream; epoch
// is the backend's applied-mutation epoch after the op (unchanged when
// the op was rejected). A rejected op does not abort the stream —
// later ops keep applying — but a malformed line does: the server acks
// it with ok=false and a decode error, then closes the stream (it
// cannot trust line framing past a syntax error). Ops apply one at a
// time, so an ack's epoch is the exact epoch at which that op's effect
// became visible to queries.
//
// A server whose backend has no Mutator (an immutable database)
// refuses the stream with 501 Not Implemented.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
)

// wireOp is one NDJSON mutation line.
type wireOp struct {
	Op       string             `json:"op"`
	ID       int64              `json:"id,omitempty"`
	X        *float64           `json:"x,omitempty"`
	Y        *float64           `json:"y,omitempty"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

// wireAck is one NDJSON ack line, index-aligned with the op stream.
type wireAck struct {
	Seq   int    `json:"seq"`
	OK    bool   `json:"ok"`
	Epoch uint64 `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// toOp validates and converts a wire op to a live.Op.
func (w wireOp) toOp() (live.Op, error) {
	switch w.Op {
	case "insert":
		if w.X == nil || w.Y == nil {
			return live.Op{}, fmt.Errorf("insert needs x and y")
		}
		return live.Op{Kind: live.OpInsert, Tuple: lbs.Tuple{
			ID: w.ID, Loc: geom.Pt(*w.X, *w.Y),
			Name: w.Name, Category: w.Category,
			Attrs: w.Attrs, Tags: w.Tags,
		}}, nil
	case "delete":
		return live.Op{Kind: live.OpDelete, ID: w.ID}, nil
	case "move":
		if w.X == nil || w.Y == nil {
			return live.Op{}, fmt.Errorf("move needs x and y")
		}
		return live.Op{Kind: live.OpMove, ID: w.ID, Loc: geom.Pt(*w.X, *w.Y)}, nil
	}
	return live.Op{}, fmt.Errorf("unknown op %q (want insert, delete or move)", w.Op)
}

// wireOpOf is the client-side inverse of toOp.
func wireOpOf(op live.Op) (wireOp, error) {
	switch op.Kind {
	case live.OpInsert:
		x, y := op.Tuple.Loc.X, op.Tuple.Loc.Y
		return wireOp{
			Op: "insert", ID: op.Tuple.ID, X: &x, Y: &y,
			Name: op.Tuple.Name, Category: op.Tuple.Category,
			Attrs: op.Tuple.Attrs, Tags: op.Tuple.Tags,
		}, nil
	case live.OpDelete:
		return wireOp{Op: "delete", ID: op.ID}, nil
	case live.OpMove:
		x, y := op.Loc.X, op.Loc.Y
		return wireOp{Op: "move", ID: op.ID, X: &x, Y: &y}, nil
	}
	return wireOp{}, fmt.Errorf("httpapi: unknown op kind %v", op.Kind)
}

// handleTupleStream applies an NDJSON mutation stream to the server's
// Mutator, acking each op as it lands (see the package comment above
// for the wire shapes).
func (s *Server) handleTupleStream(w http.ResponseWriter, r *http.Request) {
	if s.mutator == nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{
			Error: "backend is immutable: no mutator configured (run the server with a live database)",
		})
		return
	}
	// Acks flow while ops are still arriving: on HTTP/1.1 the server
	// closes the request body at the first response write unless
	// full-duplex is enabled. Where unsupported (HTTP/2 has it
	// natively) the error is ignored and large streams may see the
	// body cut off after the first ack.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ack := func(a wireAck) bool {
		if err := enc.Encode(a); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	dec := json.NewDecoder(r.Body)
	for seq := 0; ; seq++ {
		var wop wireOp
		if err := dec.Decode(&wop); err != nil {
			if !errors.Is(err, io.EOF) {
				ack(wireAck{Seq: seq, OK: false, Error: fmt.Sprintf("decode: %v", err)})
			}
			return
		}
		op, err := wop.toOp()
		if err != nil {
			if !ack(wireAck{Seq: seq, OK: false, Error: err.Error()}) {
				return
			}
			continue
		}
		res := s.mutator.Apply(r.Context(), []live.Op{op})[0]
		a := wireAck{Seq: seq, OK: res.Err == nil, Epoch: res.Epoch}
		if res.Err != nil {
			a.Error = res.Err.Error()
		}
		if !ack(a) {
			return
		}
	}
}

// ErrShortAckStream is returned by StreamTuples when the server closed
// the ack stream before acking every op — the unacked tail's fate is
// unknown (the ops may or may not have applied).
var ErrShortAckStream = errors.New("httpapi: ack stream ended before every op was acked")

// StreamTuples sends ops to the server's mutation stream and returns
// per-op results index-aligned with ops (a rejected op carries its
// server-side error; the stream continues past it). Unlike queries,
// the POST is never retried: mutations are not idempotent, and a
// replayed insert or move could double-apply. On a transport error or
// short ack stream the returned results cover the acked prefix and the
// error reports the rest unknown.
func (c *Client) StreamTuples(ctx context.Context, ops []live.Op) ([]live.Result, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, op := range ops {
		wop, err := wireOpOf(op)
		if err != nil {
			return nil, fmt.Errorf("httpapi: op %d: %w", i, err)
		}
		if err := enc.Encode(wop); err != nil {
			return nil, fmt.Errorf("httpapi: op %d encode: %w", i, err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tuples:stream", &buf)
	if err != nil {
		return nil, fmt.Errorf("httpapi: stream request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpapi: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e := decodeError(resp)
		return nil, fmt.Errorf("httpapi: stream status %d: %s", resp.StatusCode, e.Error)
	}
	results := make([]live.Result, 0, len(ops))
	dec := json.NewDecoder(resp.Body)
	for {
		var a wireAck
		if err := dec.Decode(&a); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return results, fmt.Errorf("httpapi: ack decode after %d acks: %w", len(results), err)
		}
		if a.Seq != len(results) {
			return results, fmt.Errorf("httpapi: ack out of order: got seq %d, want %d", a.Seq, len(results))
		}
		r := live.Result{Epoch: a.Epoch}
		if !a.OK {
			r.Err = errors.New(a.Error)
		}
		results = append(results, r)
	}
	if len(results) != len(ops) {
		return results, fmt.Errorf("%w: %d of %d acked", ErrShortAckStream, len(results), len(ops))
	}
	return results, nil
}
