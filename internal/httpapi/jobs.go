package httpapi

// Server-side estimation jobs over the wire: the paper's algorithms as
// a remotely drivable service.
//
//	POST   /v1/estimate        submit a jobs.Spec        → 202 + jobs.View
//	GET    /v1/jobs/{id}       status + partial results  → 200 + jobs.View
//	GET    /v1/jobs/{id}/trace NDJSON jobs.TraceEvent stream (replay+follow)
//	DELETE /v1/jobs/{id}       cancel, wait, partial results → 200 + jobs.View
//	GET    /v1/stats           live service/cache/job counters
//
// The estimation itself runs server-side against the server's backend
// querier; only declarative specs (core.AggSpec trees) cross the wire,
// never closures.
//
// A spec may carry many aggregates: the server runs the batch through
// the multi-aggregate query planner (core.PlanBatch), deduping
// predicates, fusing same-selection aggregates and sharing sample
// streams, so a batch costs far fewer oracle queries than one job per
// aggregate. The job view then reports per-aggregate results plus a
// "plan" section (method groups, fused physicals, per-group account).
// The wire shape is backward compatible — single-aggregate specs and
// pre-planner clients see the same fields as before.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/shard"
	"repro/internal/store"
)

// maxEstimateBodyBytes bounds a job submission body; specs are small
// (a deep predicate tree is a few KB).
const maxEstimateBodyBytes = 1 << 20

// handleEstimate creates and starts an estimation job.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEstimateBodyBytes)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid estimate body: %v", err)})
		return
	}
	if spec.Metric != "" {
		// A spec pinned to a metric only runs on a backend ranking in it:
		// the estimates would otherwise silently change meaning.
		m, err := geo.ParseMetric(spec.Metric)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if m != s.metric {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error: fmt.Sprintf("spec compiled for metric %s, server runs %s", m, s.metric),
			})
			return
		}
	}
	j, err := s.jobs.Create(spec)
	if err != nil {
		// Capacity exhaustion is server state, not a malformed request:
		// a 429 with its own machine-readable code, so retry policies
		// can wait it out (capacity clears when a job settles) while a
		// budget-exhausted 429 stays terminal.
		if errors.Is(err, jobs.ErrTableFull) {
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Code: codeJobsExhausted})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// jobFor resolves the {id} path value, rendering the 404 itself.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
		return nil, false
	}
	return j, true
}

// handleJobGet reports a job's state and its (partial) results.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobDelete cancels a job and returns its settled view — for a
// job canceled mid-run, the partial Results of the samples completed
// before the cancel. Deleting a finished job is a no-op returning its
// final view.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	s.jobs.Cancel(j.ID)
	// The run stops at the next sample boundary; bounded by the
	// request context, so an impatient client gets the best-effort
	// snapshot instead of hanging.
	_ = j.Wait(r.Context())
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobTrace streams the job's trace as NDJSON: one
// jobs.TraceEvent per line, replaying from the earliest retained event
// (the first sample, unless the job outgrew its bounded trace window)
// and following live until the job settles or the client disconnects.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	_ = j.FollowTrace(r.Context(), func(e jobs.TraceEvent) error {
		if err := enc.Encode(e); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// cacheStatsView is the wire form of lbs.CacheStats.
type cacheStatsView struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Bypasses  int64 `json:"bypasses"`
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries dropped by epoch-based region
	// invalidation (mutations dirtying cached answers), as opposed to
	// capacity evictions.
	Invalidations int64 `json:"invalidations"`
	Entries       int64 `json:"entries"`
	// Restored counts entries loaded from a durable snapshot at startup
	// (warm restart); omitted on ephemeral caches.
	Restored int64 `json:"restored,omitempty"`
}

// liveStatsView is the wire form of live.Stats.
type liveStatsView struct {
	Epoch       uint64 `json:"epoch"`
	BaseLen     int    `json:"base_len"`
	DeltaLen    int    `json:"delta_len"`
	Tombstones  int    `json:"tombstones"`
	Inserts     int64  `json:"inserts"`
	Deletes     int64  `json:"deletes"`
	Moves       int64  `json:"moves"`
	Rejected    int64  `json:"rejected"`
	Compactions int64  `json:"compactions"`
	Compacting  bool   `json:"compacting"`
}

func liveViewOf(st live.Stats) *liveStatsView {
	return &liveStatsView{
		Epoch: st.Epoch, BaseLen: st.BaseLen, DeltaLen: st.DeltaLen,
		Tombstones: st.Tombstones, Inserts: st.Inserts, Deletes: st.Deletes,
		Moves: st.Moves, Rejected: st.Rejected,
		Compactions: st.Compactions, Compacting: st.Compacting,
	}
}

// shardStatView is the wire form of one federation member's stats.
type shardStatView struct {
	MinX    float64 `json:"min_x"`
	MinY    float64 `json:"min_y"`
	MaxX    float64 `json:"max_x"`
	MaxY    float64 `json:"max_y"`
	Queries int64   `json:"queries"`
	// State is the member's circuit-breaker state (closed / open /
	// half-open); Failures counts its availability failures, Opens how
	// many times its breaker tripped.
	State    shard.BreakerState `json:"state,omitempty"`
	Failures int64              `json:"failures,omitempty"`
	Opens    int64              `json:"opens,omitempty"`
}

// federationStatsView is the wire form of shard.RouterStats.
type federationStatsView struct {
	// Logical is the federation's client-visible query count; Upstream
	// the physical subqueries fanned out across the shards.
	Logical  int64 `json:"logical"`
	Upstream int64 `json:"upstream"`
	// Partial counts queries answered degraded, Dropped batch positions
	// lost to a dead owner; Retries and Hedges count the resilience
	// layer's extra member attempts.
	Partial int64           `json:"partial,omitempty"`
	Dropped int64           `json:"dropped,omitempty"`
	Retries int64           `json:"retries,omitempty"`
	Hedges  int64           `json:"hedges,omitempty"`
	Shards  []shardStatView `json:"shards"`
}

// faultStatsView is the wire form of faults.Stats, reported when the
// backend chain runs through a fault injector (chaos deployments).
type faultStatsView struct {
	Calls      int64 `json:"calls"`
	Transients int64 `json:"transients"`
	DownCalls  int64 `json:"down_calls"`
	Duplicates int64 `json:"duplicates"`
	Slowed     int64 `json:"slowed"`
}

// memberFaults walks each federation member's wrapper chain and sums
// any faults.Stats found, or returns nil when no member runs through
// an injector.
func memberFaults(members []lbs.Querier) *faultStatsView {
	var fv *faultStatsView
	for _, q := range members {
		for q != nil {
			if fs, ok := q.(interface{ Stats() faults.Stats }); ok {
				st := fs.Stats()
				if fv == nil {
					fv = &faultStatsView{}
				}
				fv.Calls += st.Calls
				fv.Transients += st.Transients
				fv.DownCalls += st.DownCalls
				fv.Duplicates += st.Duplicates
				fv.Slowed += st.Slowed
				break
			}
			iw, ok := q.(lbs.Wrapper)
			if !ok {
				break
			}
			q = iw.Inner()
		}
	}
	return fv
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	// Queries is the backend's lifetime query count (the paper's cost
	// metric).
	Queries int64 `json:"queries"`
	// Metric names the backend's distance metric (euclidean | haversine).
	Metric string `json:"metric,omitempty"`
	// BudgetRemaining is the service budget still available, or -1
	// when the budget is unlimited (or unknown for a custom backend).
	BudgetRemaining int64 `json:"budget_remaining"`
	// Cache reports answer-cache effectiveness when the backend chain
	// contains a CachedOracle.
	Cache *cacheStatsView `json:"cache,omitempty"`
	// PartialAnswers counts queries this server answered degraded (a
	// federation shard down or skipped; the response carried partial
	// headers).
	PartialAnswers int64 `json:"partial_answers,omitempty"`
	// Federation reports scatter-gather and per-shard counters when
	// the backend chain ends in a shard.Router.
	Federation *federationStatsView `json:"federation,omitempty"`
	// Faults reports injected-fault counters when the backend chain
	// runs through a faults.Injector (chaos deployments).
	Faults *faultStatsView `json:"faults,omitempty"`
	// Live reports mutation counters when the backend chain (or the
	// configured Mutator) is a live database or cluster.
	Live *liveStatsView `json:"live,omitempty"`
	// Store reports the durable storage engine's counters (pages read
	// and written, buffer-pool hit rate, WAL volume, recovery counts)
	// when the server runs with -data-dir; the chain walk finds the
	// store.Instrumented wrapper wherever it sits in the stack.
	Store *store.Stats `json:"store,omitempty"`
	// Jobs counts retained estimation jobs by state.
	Jobs map[jobs.State]int `json:"jobs"`
}

// handleStats reports live service counters: query count, remaining
// budget, cache stats (when serving through a CachedOracle),
// federation stats (when serving through a shard.Router) and job
// state counts — the observable replacement for dumping stats at
// process shutdown.
//
// The walk is generic over lbs.Wrapper, so arbitrary stacks —
// Scoped→Cached→Service, Cached→Router→..., deeper gateways — report
// every layer's optional stats interfaces, not just the outermost
// querier's.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Queries:         s.svc.QueryCount(),
		Metric:          s.metric.String(),
		BudgetRemaining: -1,
		PartialAnswers:  s.partials.Load(),
		Jobs:            s.jobs.Counts(),
	}
	for q := s.svc; q != nil; {
		if resp.Cache == nil {
			if cs, ok := q.(interface{ Stats() lbs.CacheStats }); ok {
				st := cs.Stats()
				resp.Cache = &cacheStatsView{
					Hits: st.Hits, Misses: st.Misses, Bypasses: st.Bypasses,
					Evictions: st.Evictions, Invalidations: st.Invalidations,
					Entries: st.Entries, Restored: st.Restored,
				}
			}
		}
		if resp.Federation == nil {
			if fs, ok := q.(interface{ Stats() shard.RouterStats }); ok {
				st := fs.Stats()
				fv := &federationStatsView{
					Logical: st.Logical, Upstream: st.Upstream,
					Partial: st.Partial, Dropped: st.Dropped,
					Retries: st.Retries, Hedges: st.Hedges,
				}
				for _, sh := range st.Shards {
					fv.Shards = append(fv.Shards, shardStatView{
						MinX: sh.Region.Min.X, MinY: sh.Region.Min.Y,
						MaxX: sh.Region.Max.X, MaxY: sh.Region.Max.Y,
						Queries: sh.Queries,
						State:   sh.State, Failures: sh.Failures, Opens: sh.Opens,
					})
				}
				resp.Federation = fv
			}
		}
		if resp.Faults == nil {
			if fs, ok := q.(interface{ Stats() faults.Stats }); ok {
				st := fs.Stats()
				resp.Faults = &faultStatsView{
					Calls: st.Calls, Transients: st.Transients,
					DownCalls: st.DownCalls, Duplicates: st.Duplicates,
					Slowed: st.Slowed,
				}
			} else if m, ok := q.(interface{ Members() []lbs.Querier }); ok {
				// A federation's injectors sit inside its member chains,
				// not on the main wrapper spine: sum them across shards.
				if fv := memberFaults(m.Members()); fv != nil {
					resp.Faults = fv
				}
			}
		}
		if resp.Live == nil {
			if ls, ok := q.(interface{ LiveStats() live.Stats }); ok {
				resp.Live = liveViewOf(ls.LiveStats())
			}
		}
		if resp.Store == nil {
			if ss, ok := q.(interface{ StoreStats() store.Stats }); ok {
				st := ss.StoreStats()
				resp.Store = &st
			}
		}
		if rb, ok := q.(interface{ RemainingBudget() int64 }); ok {
			resp.BudgetRemaining = rb.RemainingBudget()
		}
		iw, ok := q.(lbs.Wrapper)
		if !ok {
			break
		}
		q = iw.Inner()
	}
	// A Mutator configured beside (not inside) the query chain still
	// reports: the live backend may sit behind wrappers that do not
	// implement lbs.Wrapper.
	if resp.Live == nil && s.mutator != nil {
		if ls, ok := s.mutator.(interface{ LiveStats() live.Stats }); ok {
			resp.Live = liveViewOf(ls.LiveStats())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
