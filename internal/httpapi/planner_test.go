package httpapi

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// eqOrBothNaN compares wire floats bitwise, treating NaN (null on the
// wire) as equal to NaN.
func eqOrBothNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestEstimateBatchMatchesInProcessPlan is the batch acceptance pin: a
// multi-aggregate spec submitted over POST /v1/estimate returns, for
// the same seed, exactly the per-aggregate estimates of the in-process
// planner (core.PlanBatch + Execute) — for LR and LNR, over a single
// service and a 4-shard federated router.
func TestEstimateBatchMatchesInProcessPlan(t *testing.T) {
	public := core.TagEq("type", "public")
	specs := []core.AggSpec{
		core.CountSpec().WithWhere(public),
		core.SumSpec("enrollment").WithWhere(public),
		core.AvgSpec("enrollment").WithWhere(public).WithLabel("avg_public"),
		// Same selection as the next spec modulo and-reordering: the
		// planner must fuse both onto one physical aggregate.
		core.CountSpec().
			WithWhere(core.And(core.AttrCmp("enrollment", "ge", 100), public)).
			WithLabel("count_big"),
		core.CountSpec().
			WithWhere(core.And(public, core.AttrCmp("enrollment", "ge", 100))).
			WithLabel("count_big2"),
	}
	newBackend := func(t *testing.T, shards int) lbs.Querier {
		t.Helper()
		db := workload.USASchools(200, 7).DB
		if shards == 1 {
			return lbs.NewService(db, lbs.Options{K: 5})
		}
		router, err := shard.NewLocal(db, lbs.Options{K: 5}, shards)
		if err != nil {
			t.Fatal(err)
		}
		return router
	}
	for _, method := range []string{jobs.MethodLR, jobs.MethodLNR} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", method, shards), func(t *testing.T) {
				ctx := context.Background()
				opts := jobs.RunOptions{MaxSamples: 20}

				// In-process reference over its own identical backend.
				plan, err := core.PlanBatch(specs, core.PlanOptions{
					Method:     method,
					Seed:       99,
					MaxSamples: opts.MaxSamples,
				})
				if err != nil {
					t.Fatal(err)
				}
				want, err := plan.Execute(ctx, newBackend(t, shards).(core.Oracle), nil)
				if err != nil {
					t.Fatal(err)
				}

				// The same batch, submitted as a server-side job.
				srv := httptest.NewServer(NewServer(newBackend(t, shards)))
				defer srv.Close()
				c := newJobsClient(t, srv)
				v, err := c.Estimate(ctx, jobs.Spec{
					Method: method, Seed: 99, Aggregates: specs, Options: opts,
				})
				if err != nil {
					t.Fatal(err)
				}
				final, err := c.WaitJob(ctx, v.ID, 10*time.Millisecond)
				if err != nil {
					t.Fatal(err)
				}
				if final.State != jobs.StateDone {
					t.Fatalf("job state %s (err %q), want done", final.State, final.Error)
				}
				if len(final.Results) != len(want.Results) {
					t.Fatalf("got %d results, want %d", len(final.Results), len(want.Results))
				}
				for i, r := range final.Results {
					w := want.Results[i]
					if r.Name != w.Name {
						t.Errorf("result %d named %q, want %q", i, r.Name, w.Name)
					}
					if !eqOrBothNaN(float64(r.Estimate), w.Estimate) ||
						!eqOrBothNaN(float64(r.StdErr), w.StdErr) ||
						!eqOrBothNaN(float64(r.CI95), w.CI95) {
						t.Errorf("%s: remote %v±%v != in-process %v±%v",
							r.Name, float64(r.Estimate), float64(r.StdErr), w.Estimate, w.StdErr)
					}
					if r.Samples != w.Samples || r.Queries != w.Queries {
						t.Errorf("%s: remote cost %d/%d != in-process %d/%d samples/queries",
							r.Name, r.Samples, r.Queries, w.Samples, w.Queries)
					}
				}
				if final.Plan == nil {
					t.Fatal("batch job view carries no plan")
				}
				if len(final.Plan.Groups) != len(want.Groups) {
					t.Fatalf("plan groups %d, want %d", len(final.Plan.Groups), len(want.Groups))
				}
				for gi, g := range final.Plan.Groups {
					wg := want.Groups[gi]
					if g.Method != wg.Method || g.Seed != wg.Seed ||
						g.Samples != wg.Samples || g.Queries != wg.Queries {
						t.Errorf("group %d: remote %+v != in-process %+v", gi, g, wg)
					}
				}
				// 5 specs collapse to 3 physicals: the AVG rides the same
				// COUNT+SUM as specs 0-1, and the two and-reordered COUNTs
				// fuse onto one conjunction aggregate; 2 distinct predicates.
				g := final.Plan.Groups[0]
				if len(g.Aggs) != 3 || final.Plan.Preds != 2 {
					t.Errorf("fusion off: %d physicals / %d preds, want 3 / 2 (aggs %v)",
						len(g.Aggs), final.Plan.Preds, g.Aggs)
				}
			})
		}
	}
}
