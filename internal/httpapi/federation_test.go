package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestEstimateAgainstShardedBackendMatchesSingle is the federation
// acceptance pin: a full estimation job submitted over the wire
// against a sharded backend reproduces, for the same seed and budget,
// exactly the estimates of the same job against a single service over
// the union database.
func TestEstimateAgainstShardedBackendMatchesSingle(t *testing.T) {
	specs := []core.AggSpec{
		core.CountSpec(),
		core.SumSpec("enrollment"),
	}
	run := func(backend lbs.Querier) *jobs.View {
		t.Helper()
		srv := httptest.NewServer(NewServer(backend))
		defer srv.Close()
		c := newJobsClient(t, srv)
		ctx := context.Background()
		v, err := c.Estimate(ctx, jobs.Spec{
			Method:     jobs.MethodLR,
			Seed:       42,
			Aggregates: specs,
			Options:    jobs.RunOptions{MaxQueries: 1200},
		})
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.WaitJob(ctx, v.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("job state %s (%s)", final.State, final.Error)
		}
		return final
	}

	sc := workload.USASchools(250, 7)
	single := run(lbs.NewService(sc.DB, lbs.Options{K: 5}))
	for _, n := range []int{2, 4, 8} {
		router, err := shard.NewLocal(workload.USASchools(250, 7).DB, lbs.Options{K: 5}, n)
		if err != nil {
			t.Fatal(err)
		}
		sharded := run(router)
		if !reflect.DeepEqual(single.Results, sharded.Results) {
			t.Fatalf("shards=%d: estimates diverge\nsingle:  %+v\nsharded: %+v",
				n, single.Results, sharded.Results)
		}
		if single.Samples != sharded.Samples || single.Queries != sharded.Queries {
			t.Fatalf("shards=%d: cost diverges: samples %d vs %d, queries %d vs %d",
				n, single.Samples, sharded.Samples, single.Queries, sharded.Queries)
		}
	}
}

// TestFederatedRemoteUpstreams exercises the -upstream deployment
// shape end to end: each shard served by its own HTTP server, the
// router federating httpapi.Clients, answers bit-identical to a
// single in-process service.
func TestFederatedRemoteUpstreams(t *testing.T) {
	db := workload.USASchools(200, 13).DB
	parts := shard.Partition(db, 3)
	var shards []shard.Shard
	for _, p := range parts {
		srv := httptest.NewServer(NewServer(lbs.NewService(p, lbs.Options{K: 5})))
		defer srv.Close()
		c, err := NewClient(context.Background(), srv.URL, Selection{}, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, shard.Shard{Querier: c, Region: c.Bounds()})
	}
	router, err := shard.NewRouter(shards, lbs.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	single := lbs.NewService(db, lbs.Options{K: 5})
	ctx := context.Background()
	b := db.Bounds()
	for i := 0; i < 30; i++ {
		q := geom.Pt(
			b.Min.X+float64(i)*b.Width()/30,
			b.Min.Y+float64((i*7)%30)*b.Height()/30)
		want, err1 := single.QueryLR(ctx, q, nil)
		got, err2 := router.QueryLR(ctx, q, nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("point %d: %v %v", i, err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("point %d (%v): remote federation diverges\nwant %+v\ngot  %+v", i, q, want, got)
		}
	}
	// Batch path over the wire too.
	pts := []geom.Point{b.Min, b.Center(), b.Max, geom.Pt(b.Min.X-5, b.Max.Y+5)}
	want, _ := single.QueryLRBatch(ctx, pts, nil)
	got, err := router.QueryLRBatch(ctx, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("remote federated batch diverges")
	}
}

// jsonBody marshals v into a request body reader.
func jsonBody(t *testing.T, v interface{}) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// blockingQuerier wraps a Querier, parking every query until released
// — a stand-in backend that keeps estimation jobs running for as long
// as a test needs the job table full.
type blockingQuerier struct {
	lbs.Querier
	release chan struct{}
}

func (b *blockingQuerier) wait(ctx context.Context) error {
	select {
	case <-b.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *blockingQuerier) QueryLR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LRRecord, error) {
	if err := b.wait(ctx); err != nil {
		return nil, err
	}
	return b.Querier.QueryLR(ctx, q, f)
}

func (b *blockingQuerier) QueryLNR(ctx context.Context, q geom.Point, f lbs.Filter) ([]lbs.LNRRecord, error) {
	if err := b.wait(ctx); err != nil {
		return nil, err
	}
	return b.Querier.QueryLNR(ctx, q, f)
}

func (b *blockingQuerier) QueryLRBatch(ctx context.Context, pts []geom.Point, f lbs.Filter) ([][]lbs.LRRecord, error) {
	if err := b.wait(ctx); err != nil {
		return nil, err
	}
	return b.Querier.QueryLRBatch(ctx, pts, f)
}

func (b *blockingQuerier) QueryLNRBatch(ctx context.Context, pts []geom.Point, f lbs.Filter) ([][]lbs.LNRRecord, error) {
	if err := b.wait(ctx); err != nil {
		return nil, err
	}
	return b.Querier.QueryLNRBatch(ctx, pts, f)
}

// TestJobsExhaustedSurfacesAs429 pins the capacity mapping: Create at
// MaxJobs with every job running answers 429 with the distinct
// jobs_exhausted code — not a generic 500, not budget_exhausted — and
// capacity clearing lets the next submission through.
func TestJobsExhaustedSurfacesAs429(t *testing.T) {
	backend := &blockingQuerier{
		Querier: jobsTestService(t, 100, 0),
		release: make(chan struct{}),
	}
	srv := httptest.NewServer(NewServerWith(backend, ServerOptions{
		Jobs: jobs.ManagerOptions{MaxJobs: 1},
	}))
	defer srv.Close()
	c := newJobsClient(t, srv)
	c.SetRetryPolicy(NoRetry())
	ctx := context.Background()

	spec := jobs.Spec{
		Method:     jobs.MethodNNO,
		Seed:       1,
		Aggregates: []core.AggSpec{core.CountSpec()},
		Options:    jobs.RunOptions{MaxSamples: 1},
	}
	first, err := c.Estimate(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Table full, job parked on the blocking backend: raw POST to see
	// the wire shape.
	resp, err := http.Post(srv.URL+"/v1/estimate", "application/json",
		jsonBody(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&e); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full table: status %d, want 429", resp.StatusCode)
	}
	if e.Code != "jobs_exhausted" {
		t.Fatalf("full table: code %q, want jobs_exhausted", e.Code)
	}

	// The typed client surfaces it as jobs.ErrTableFull.
	if _, err := c.Estimate(ctx, spec); !errors.Is(err, jobs.ErrTableFull) {
		t.Fatalf("client error %v, want jobs.ErrTableFull", err)
	}

	// Release the parked job; once it settles, capacity clears.
	close(backend.release)
	if _, err := c.WaitJob(ctx, first.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(ctx, spec); err != nil {
		t.Fatalf("after capacity cleared: %v", err)
	}
}

// TestEstimateRetryPolicy pins the submission retry contract: capacity
// 429s are waited out (they provably created no job), budget 429s are
// never retried.
func TestEstimateRetryPolicy(t *testing.T) {
	var capacityAttempts, budgetAttempts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metaResponse{K: 5, MaxX: 1, MaxY: 1})
	})
	mux.HandleFunc("/capacity/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metaResponse{K: 5, MaxX: 1, MaxY: 1})
	})
	mux.HandleFunc("/capacity/v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		if capacityAttempts.Add(1) < 3 {
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "full", Code: codeJobsExhausted})
			return
		}
		writeJSON(w, http.StatusAccepted, jobs.View{ID: "job-1", State: jobs.StateRunning})
	})
	mux.HandleFunc("/budget/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, metaResponse{K: 5, MaxX: 1, MaxY: 1})
	})
	mux.HandleFunc("/budget/v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		budgetAttempts.Add(1)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "spent", Code: codeBudgetExhausted})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	fast := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	spec := jobs.Spec{Method: jobs.MethodNNO, Seed: 1, Aggregates: []core.AggSpec{core.CountSpec()}}
	ctx := context.Background()

	cCap, err := NewClient(ctx, srv.URL+"/capacity", Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	cCap.SetRetryPolicy(fast)
	v, err := cCap.Estimate(ctx, spec)
	if err != nil {
		t.Fatalf("capacity 429s should be retried through: %v", err)
	}
	if v.ID != "job-1" || capacityAttempts.Load() != 3 {
		t.Fatalf("view %+v after %d attempts, want job-1 after 3", v, capacityAttempts.Load())
	}

	cBud, err := NewClient(ctx, srv.URL+"/budget", Selection{}, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	cBud.SetRetryPolicy(fast)
	if _, err := cBud.Estimate(ctx, spec); !errors.Is(err, lbs.ErrBudgetExhausted) {
		t.Fatalf("budget 429: err %v, want ErrBudgetExhausted", err)
	}
	if budgetAttempts.Load() != 1 {
		t.Fatalf("budget 429 retried: %d attempts, want 1", budgetAttempts.Load())
	}
}

// TestStatsChainWalks pins the generic Inner() chain walk: stacked
// wrappers all report, whichever layer owns which stats surface.
func TestStatsChainWalks(t *testing.T) {
	ctx := context.Background()
	getStats := func(t *testing.T, backend lbs.Querier) statsResponse {
		t.Helper()
		srv := httptest.NewServer(NewServer(backend))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	t.Run("scoped-cached-service", func(t *testing.T) {
		svc := jobsTestService(t, 80, 300)
		cache := lbs.NewCachedOracle(svc, lbs.CacheOptions{Capacity: 32})
		scoped := lbs.NewScopedQuerier(cache, 0)
		for i := 0; i < 2; i++ { // miss then hit
			if _, err := scoped.QueryLR(ctx, svc.Bounds().Min, nil); err != nil {
				t.Fatal(err)
			}
		}
		st := getStats(t, scoped)
		if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
			t.Fatalf("cache stats not reported through scope: %+v", st.Cache)
		}
		if st.BudgetRemaining != 299 {
			t.Fatalf("deepest budget not reported: %d", st.BudgetRemaining)
		}
	})

	t.Run("cached-router", func(t *testing.T) {
		db := workload.USASchools(120, 3).DB
		router, err := shard.NewLocal(db, lbs.Options{K: 5, Budget: 100}, 4)
		if err != nil {
			t.Fatal(err)
		}
		cache := lbs.NewCachedOracle(router, lbs.CacheOptions{Capacity: 32})
		for i := 0; i < 2; i++ {
			if _, err := cache.QueryLR(ctx, db.Bounds().Center(), nil); err != nil {
				t.Fatal(err)
			}
		}
		st := getStats(t, cache)
		if st.Cache == nil || st.Cache.Hits != 1 {
			t.Fatalf("cache stats missing over cached router: %+v", st.Cache)
		}
		if st.Federation == nil || len(st.Federation.Shards) != 4 {
			t.Fatalf("federation stats missing through the cache: %+v", st.Federation)
		}
		if st.Federation.Logical != 1 {
			t.Fatalf("logical federation count %d, want 1 (hit is free)", st.Federation.Logical)
		}
		if st.BudgetRemaining != 99 {
			t.Fatalf("router budget not reported: %d", st.BudgetRemaining)
		}
	})
}

// TestRemoteFederationFilteredQueryIs400 pins the remote-member filter
// contract: functional filters cannot reach HTTP upstreams, so a
// filtered request against an -upstream federation front answers 400
// (a request problem: use per-selection upstream clients) — never a
// generic 500.
func TestRemoteFederationFilteredQueryIs400(t *testing.T) {
	db := workload.USASchools(60, 17).DB
	up := httptest.NewServer(NewServer(lbs.NewService(db, lbs.Options{K: 5})))
	defer up.Close()
	c, err := NewClient(context.Background(), up.URL, Selection{}, up.Client())
	if err != nil {
		t.Fatal(err)
	}
	router, err := shard.NewRouter([]shard.Shard{{Querier: c, Region: c.Bounds()}}, lbs.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(NewServer(router))
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/lr?x=1&y=2&category=school")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("filtered query via remote federation: status %d, want 400", resp.StatusCode)
	}
	// Unfiltered queries keep working through the same front.
	resp2, err := http.Get(front.URL + "/v1/lr?x=1&y=2")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unfiltered query: status %d", resp2.StatusCode)
	}
}
