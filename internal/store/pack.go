package store

// The .lbspack heap file: page 0 is the header, pages 1..N hold tuple
// records back to back (records never span pages). Every page carries
// a CRC32 over its contents, so a torn write or flipped bit surfaces
// as a typed *CorruptError at open or scan time — never a silently
// wrong database.
//
//	page 0 (header)                    data page
//	┌──────────────────────────┐      ┌─────────────────────────┐
//	│ magic   "LBSPACK1"   8 B │      │ crc32 (rest of page) 4 B│
//	│ version u32              │      │ nrecs u16   used u16    │
//	│ pageSize u32             │      │ records … zero padding  │
//	│ count    u64             │      └─────────────────────────┘
//	│ epoch    u64             │
//	│ bounds   4×f64           │
//	│ crc32 (bytes above)      │
//	└──────────────────────────┘
//
// epoch is the live-database epoch the pack captures: 0 for a cold
// ingest, the checkpoint epoch for a pack written by LiveStore (WAL
// replay resumes from it).
//
// Record order is significant: tuples are stored in the kd-tree
// preorder of their effective locations, which lets the reader
// rebuild the index in O(n) (kdtree.BuildPreordered) instead of
// re-running median selection. The order is protected by the same
// page checksums as the data.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

const (
	packMagic       = "LBSPACK1"
	packVersion     = 2
	DefaultPageSize = 4096
	minPageSize     = 256
	// headerSizeV1 is the format-1 header: no metric byte. v1 packs
	// remain readable (their metric is Euclidean by definition — the
	// format predates geodesic mode).
	headerSizeV1 = 8 + 4 + 4 + 8 + 8 + 4*8 + 4
	// headerSize is the format-2 header: a metric byte sits between
	// the bounds and the checksum.
	headerSize  = 8 + 4 + 4 + 8 + 8 + 4*8 + 1 + 4
	pageHdrSize = 4 + 2 + 2 // crc, nrecs, used
)

// CorruptError is the typed failure of every integrity check in this
// package: bad magic, checksum mismatch, truncated page, record count
// drift. Callers distinguish "the file is damaged" (recoverable by
// re-ingest or by accepting a WAL prefix) from I/O errors.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: %s: corrupt: %s", e.Path, e.Detail)
}

func corrupt(path, format string, args ...any) error {
	return &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
}

// UnsupportedVersionError reports a structurally sound pack written by
// a format version this reader does not implement — version
// negotiation, distinct from *CorruptError: the file is not damaged,
// the reader is too old (or the version field genuinely unknown). The
// check runs before any checksum is interpreted, because the header
// length itself is version-specific — an old reader checksumming a
// new header at the wrong length would misreport a healthy file as
// corrupt.
type UnsupportedVersionError struct {
	Path    string
	Version uint32
	// Max is the newest format version this reader implements.
	Max uint32
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("store: %s: pack format version %d not supported (reader implements ≤ %d)", e.Path, e.Version, e.Max)
}

// WritePack writes db (with its effective locations) as a Euclidean
// .lbspack at path; see WritePackMetric.
func WritePack(path string, db *lbs.Database, epoch uint64, pageSize int, m *Metrics) error {
	return WritePackMetric(path, db, geo.Euclidean, epoch, pageSize, m)
}

// WritePackMetric writes db (with its effective locations) as a
// .lbspack at path, atomically: temp file, fsync, rename. epoch and
// the distance metric of the service stack the pack feeds are
// recorded in the header (format v2). The same database always
// produces the same bytes.
func WritePackMetric(path string, db *lbs.Database, metric geo.Metric, epoch uint64, pageSize int, m *Metrics) error {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize {
		return fmt.Errorf("store: page size %d below minimum %d", pageSize, minPageSize)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	defer f.Close()

	b := db.Bounds()
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, packMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, packVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(pageSize))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(db.Len()))
	hdr = binary.LittleEndian.AppendUint64(hdr, epoch)
	for _, v := range []float64{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y} {
		hdr = appendF64(hdr, v)
	}
	hdr = append(hdr, byte(metric))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	page := make([]byte, pageSize)
	copy(page, hdr)
	if _, err := f.Write(page); err != nil {
		return err
	}
	if m != nil {
		m.PagesWritten.Add(1)
	}

	// Fill data pages: append records until one does not fit, seal the
	// page (crc + counts), start the next.
	var rec []byte
	nrecs, used := 0, 0
	payload := page[pageHdrSize:]
	seal := func() error {
		binary.LittleEndian.PutUint16(page[4:], uint16(nrecs))
		binary.LittleEndian.PutUint16(page[6:], uint16(used))
		binary.LittleEndian.PutUint32(page[0:], crc32.ChecksumIEEE(page[4:]))
		if _, err := f.Write(page); err != nil {
			return err
		}
		if m != nil {
			m.PagesWritten.Add(1)
		}
		for i := range page {
			page[i] = 0
		}
		nrecs, used = 0, 0
		return nil
	}
	// Records go out in the database's kd-tree preorder: the balanced
	// median build makes tree shape a pure function of the point count,
	// so a reader that trusts this order (Pack advertises it via
	// KDPreordered) rebuilds the index in O(n) instead of re-running
	// median selection. Preorder of a rebuilt tree is the stored order
	// itself, so checkpoint → reopen → checkpoint cycles are stable.
	for _, i := range db.KDPreorder() {
		rec = appendTuple(rec[:0], *db.Tuple(i), db.EffectiveLoc(i))
		if len(rec) > len(payload) {
			return fmt.Errorf("store: tuple %d encodes to %d bytes, larger than a %d-byte page", db.Tuple(i).ID, len(rec), pageSize)
		}
		if used+len(rec) > len(payload) {
			if err := seal(); err != nil {
				return err
			}
		}
		copy(payload[used:], rec)
		used += len(rec)
		nrecs++
	}
	if nrecs > 0 {
		if err := seal(); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Pack is an open .lbspack: the header fields plus a buffer pool over
// the data pages. It implements lbs.TupleSource, so
// lbs.NewDatabaseFromStore builds the kd-tree from a paged scan that
// never holds more than the pool budget in memory.
type Pack struct {
	f        *os.File
	path     string
	pageSize int
	count    uint64
	epoch    uint64
	bounds   geom.Rect
	metric   geo.Metric
	npages   int
	pool     *pool
}

// OpenPack opens and validates a .lbspack. poolPages bounds how many
// pages the buffer pool keeps resident (≥ 1; 0 means DefaultPoolPages).
//
// Version negotiation runs on a short magic+version probe before the
// header checksum is interpreted: the header length is
// version-specific, so checksumming first would misreport a healthy
// newer-format file as corrupt. A version this reader does not
// implement is a typed *UnsupportedVersionError; format-1 packs open
// fine and report geo.Euclidean (the format predates geodesic mode).
func OpenPack(path string, poolPages int, m *Metrics) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	probe := make([]byte, 12)
	if _, err := f.ReadAt(probe, 0); err != nil {
		f.Close()
		return nil, corrupt(path, "short header: %v", err)
	}
	if string(probe[:8]) != packMagic {
		f.Close()
		return nil, corrupt(path, "bad magic %q", probe[:8])
	}
	version := binary.LittleEndian.Uint32(probe[8:])
	hdrSize := 0
	switch version {
	case 1:
		hdrSize = headerSizeV1
	case 2:
		hdrSize = headerSize
	default:
		f.Close()
		return nil, &UnsupportedVersionError{Path: path, Version: version, Max: packVersion}
	}
	hdr := make([]byte, hdrSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, corrupt(path, "short header: %v", err)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[hdrSize-4:])
	if got := crc32.ChecksumIEEE(hdr[:hdrSize-4]); got != wantCRC {
		f.Close()
		return nil, corrupt(path, "header checksum %08x, want %08x", got, wantCRC)
	}
	p := &Pack{
		f:        f,
		path:     path,
		pageSize: int(binary.LittleEndian.Uint32(hdr[12:])),
		count:    binary.LittleEndian.Uint64(hdr[16:]),
		epoch:    binary.LittleEndian.Uint64(hdr[24:]),
	}
	if version >= 2 {
		switch mb := hdr[64]; mb {
		case byte(geo.Euclidean):
			p.metric = geo.Euclidean
		case byte(geo.Haversine):
			p.metric = geo.Haversine
		default:
			f.Close()
			return nil, corrupt(path, "unknown metric byte %d", mb)
		}
	}
	if p.pageSize < minPageSize {
		f.Close()
		return nil, corrupt(path, "page size %d below minimum %d", p.pageSize, minPageSize)
	}
	bits := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(hdr[off:]))
	}
	p.bounds = geom.Rect{Min: geom.Pt(bits(32), bits(40)), Max: geom.Pt(bits(48), bits(56))}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%int64(p.pageSize) != 0 {
		f.Close()
		return nil, corrupt(path, "size %d is not a multiple of page size %d", st.Size(), p.pageSize)
	}
	p.npages = int(st.Size()/int64(p.pageSize)) - 1
	p.pool = newPool(p, poolPages, m)
	return p, nil
}

// readPage reads and validates data page n (0-based among data pages)
// into dst; the buffer pool calls it on a miss.
func (p *Pack) readPage(n int, dst []byte) error {
	off := int64(n+1) * int64(p.pageSize)
	if _, err := p.f.ReadAt(dst, off); err != nil {
		return corrupt(p.path, "page %d: %v", n, err)
	}
	wantCRC := binary.LittleEndian.Uint32(dst)
	if got := crc32.ChecksumIEEE(dst[4:]); got != wantCRC {
		return corrupt(p.path, "page %d checksum %08x, want %08x", n, got, wantCRC)
	}
	return nil
}

// Bounds implements lbs.TupleSource.
func (p *Pack) Bounds() geom.Rect { return p.bounds }

// Len implements lbs.TupleSource.
func (p *Pack) Len() int { return int(p.count) }

// Epoch is the live-database epoch recorded when the pack was written.
func (p *Pack) Epoch() uint64 { return p.epoch }

// Metric is the distance metric recorded when the pack was written.
// Format-1 packs always report geo.Euclidean.
func (p *Pack) Metric() geo.Metric { return p.metric }

// KDPreordered implements lbs.PreorderedSource: WritePack always
// records tuples in the source database's kd-tree preorder, so a
// checksum-valid pack scans in rebuild-ready order.
func (p *Pack) KDPreordered() bool { return true }

// Scan implements lbs.TupleSource: it decodes every record in file
// order through the buffer pool, pinning one page at a time. A decode
// error or record-count drift is a *CorruptError.
func (p *Pack) Scan(fn func(t lbs.Tuple, effective geom.Point) error) error {
	seen := uint64(0)
	intern := make(map[string]string)
	for n := 0; n < p.npages; n++ {
		page, err := p.pool.acquire(n)
		if err != nil {
			return err
		}
		nrecs := int(binary.LittleEndian.Uint16(page[4:]))
		used := int(binary.LittleEndian.Uint16(page[6:]))
		if pageHdrSize+used > len(page) {
			p.pool.release(n)
			return corrupt(p.path, "page %d: used %d overflows page", n, used)
		}
		r := &reader{b: page[pageHdrSize : pageHdrSize+used], intern: intern}
		for i := 0; i < nrecs; i++ {
			t, eff, err := r.tuple()
			if err != nil {
				p.pool.release(n)
				return corrupt(p.path, "page %d record %d: %v", n, i, err)
			}
			if err := fn(t, eff); err != nil {
				p.pool.release(n)
				return err
			}
			seen++
		}
		p.pool.release(n)
	}
	if seen != p.count {
		return corrupt(p.path, "header says %d records, pages hold %d", p.count, seen)
	}
	return nil
}

// Close releases the file handle.
func (p *Pack) Close() error { return p.f.Close() }

// OpenDatabase opens path and materializes the lbs.Database it holds
// (kd-tree rebuilt from the paged scan), returning the recorded epoch.
func OpenDatabase(path string, poolPages int, m *Metrics) (*lbs.Database, uint64, error) {
	db, epoch, _, err := OpenDatabaseMetric(path, poolPages, m)
	return db, epoch, err
}

// OpenDatabaseMetric is OpenDatabase plus the distance metric recorded
// in the pack header, so callers can refuse to serve a pack under a
// metric it was not written for.
func OpenDatabaseMetric(path string, poolPages int, m *Metrics) (*lbs.Database, uint64, geo.Metric, error) {
	p, err := OpenPack(path, poolPages, m)
	if err != nil {
		return nil, 0, geo.Euclidean, err
	}
	defer p.Close()
	db, err := lbs.NewDatabaseFromStore(p)
	if err != nil {
		if _, ok := err.(*CorruptError); !ok {
			err = corrupt(path, "%v", err)
		}
		return nil, 0, geo.Euclidean, err
	}
	return db, p.epoch, p.metric, nil
}
