package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/geo"
	"repro/internal/lbs"
	"repro/internal/live"
)

// Metrics are the storage engine's shared counters; every component
// of a Store (pack writer, buffer pool, WAL, recovery, job store)
// feeds the same instance, and Stats() snapshots it for /v1/stats.
type Metrics struct {
	PagesRead     atomic.Uint64
	PagesWritten  atomic.Uint64
	PoolHits      atomic.Uint64
	PoolMisses    atomic.Uint64
	PoolEvictions atomic.Uint64

	WALBytes    atomic.Uint64
	WALFrames   atomic.Uint64
	Checkpoints atomic.Uint64

	RecoveredFrames atomic.Uint64 // WAL frames replayed at open
	RecoveredOps    atomic.Uint64 // mutations those frames carried
	RecoveredJobs   atomic.Uint64 // finished jobs reloaded
	ResumedJobs     atomic.Uint64 // interrupted jobs re-running
	UnresumableJobs atomic.Uint64 // recovered jobs settled as failed
	CacheRestored   atomic.Uint64 // cache entries restored at open
}

// Stats is a point-in-time snapshot of Metrics, JSON-shaped for the
// /v1/stats store section.
type Stats struct {
	PagesRead     uint64 `json:"pages_read"`
	PagesWritten  uint64 `json:"pages_written"`
	PoolHits      uint64 `json:"pool_hits"`
	PoolMisses    uint64 `json:"pool_misses"`
	PoolEvictions uint64 `json:"pool_evictions"`
	// PoolHitRate is hits / (hits + misses), 0 when no pool traffic.
	PoolHitRate float64 `json:"pool_hit_rate"`

	WALBytes    uint64 `json:"wal_bytes"`
	WALFrames   uint64 `json:"wal_frames"`
	Checkpoints uint64 `json:"checkpoints"`

	RecoveredFrames uint64 `json:"recovered_frames"`
	RecoveredOps    uint64 `json:"recovered_ops"`
	RecoveredJobs   uint64 `json:"recovered_jobs"`
	ResumedJobs     uint64 `json:"resumed_jobs"`
	UnresumableJobs uint64 `json:"unresumable_jobs"`
	CacheRestored   uint64 `json:"cache_restored"`
}

// Snapshot reads every counter once.
func (m *Metrics) Snapshot() Stats {
	s := Stats{
		PagesRead:       m.PagesRead.Load(),
		PagesWritten:    m.PagesWritten.Load(),
		PoolHits:        m.PoolHits.Load(),
		PoolMisses:      m.PoolMisses.Load(),
		PoolEvictions:   m.PoolEvictions.Load(),
		WALBytes:        m.WALBytes.Load(),
		WALFrames:       m.WALFrames.Load(),
		Checkpoints:     m.Checkpoints.Load(),
		RecoveredFrames: m.RecoveredFrames.Load(),
		RecoveredOps:    m.RecoveredOps.Load(),
		RecoveredJobs:   m.RecoveredJobs.Load(),
		ResumedJobs:     m.ResumedJobs.Load(),
		UnresumableJobs: m.UnresumableJobs.Load(),
		CacheRestored:   m.CacheRestored.Load(),
	}
	if total := s.PoolHits + s.PoolMisses; total > 0 {
		s.PoolHitRate = float64(s.PoolHits) / float64(total)
	}
	return s
}

// Options configures a Store.
type Options struct {
	// PageSize is the .lbspack page size in bytes (default 4096).
	PageSize int
	// PoolPages bounds the buffer pool (default 64 pages).
	PoolPages int
	// SyncWAL fsyncs the WAL after every journaled batch. Off, the WAL
	// is still written before mutations become visible (crash-consistent
	// against process death); on, it also survives power loss, at a
	// latency cost per Apply.
	SyncWAL bool
	// Metric is the distance metric of the service stack this store
	// backs. It is stamped into every pack header written and checked
	// on warm opens: a pack written for one metric never silently
	// serves another (the recorded coordinates mean different things).
	Metric geo.Metric
}

// File layout inside a store directory.
const (
	packFile  = "db.lbspack"
	walFile   = "wal.log"
	cacheFile = "cache.snapshot"
	jobsDir   = "jobs"
)

// Store is one durable data directory: the pack + WAL pair behind a
// database, per-job JSON state, and a cache snapshot. Open it once at
// startup; every sub-handle shares its Metrics.
type Store struct {
	dir  string
	opts Options
	m    Metrics

	mu   sync.Mutex
	live *LiveStore // non-nil once OpenLive recovered / created it
}

// Open opens (creating if needed) the store directory.
func Open(dir string, opts Options) (*Store, error) {
	if opts.PageSize <= 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = DefaultPoolPages
	}
	if err := os.MkdirAll(filepath.Join(dir, jobsDir), 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Metrics returns the shared counters (tests and wiring).
func (s *Store) Metrics() *Metrics { return &s.m }

// Stats snapshots the engine counters.
func (s *Store) Stats() Stats { return s.m.Snapshot() }

// PackPath is the database pack's location inside the store.
func (s *Store) PackPath() string { return filepath.Join(s.dir, packFile) }

// OpenOrCreateDatabase returns the store's database: a paged scan of
// the existing pack when one is present (warm=true), else gen() is
// invoked to build it cold and the result is packed for next time.
// A warm pack recorded under a different metric than the store's is
// refused — its coordinates were laid out for another geometry.
func (s *Store) OpenOrCreateDatabase(gen func() *lbs.Database) (db *lbs.Database, warm bool, err error) {
	path := s.PackPath()
	if _, statErr := os.Stat(path); statErr == nil {
		db, _, metric, err := OpenDatabaseMetric(path, s.opts.PoolPages, &s.m)
		if err == nil && metric != s.opts.Metric {
			return nil, true, fmt.Errorf("store: %s: pack written for metric %s, store configured for %s", path, metric, s.opts.Metric)
		}
		return db, true, err
	}
	db = gen()
	if err := WritePackMetric(path, db, s.opts.Metric, 0, s.opts.PageSize, &s.m); err != nil {
		return nil, false, err
	}
	return db, false, nil
}

// SaveCache snapshots a CachedOracle's shards to the store.
func (s *Store) SaveCache(c *lbs.CachedOracle) error {
	path := filepath.Join(s.dir, cacheFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := c.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCache restores a cache snapshot if one exists, returning how
// many entries came back (0, nil when there is no snapshot — a cold
// cache is not an error, and neither is a configuration mismatch:
// the stale snapshot is discarded and the cache serves cold).
func (s *Store) LoadCache(c *lbs.CachedOracle) (int, error) {
	f, err := os.Open(filepath.Join(s.dir, cacheFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	n, err := c.ReadSnapshot(f)
	s.m.CacheRestored.Add(uint64(n))
	if err != nil && n == 0 {
		// Mismatched or unreadable snapshots load nothing; cold is safe.
		return 0, nil
	}
	return n, err
}

// Jobs returns the per-job persistence backend rooted in the store.
func (s *Store) Jobs() *JobStore {
	return &JobStore{dir: filepath.Join(s.dir, jobsDir), m: &s.m}
}

// Live returns the LiveStore once OpenLive created it (nil before).
func (s *Store) Live() *LiveStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Checkpoint flushes durable state: the live database (pack rewrite +
// WAL truncation) when one is open. Call it at graceful shutdown.
func (s *Store) Checkpoint() error {
	if ls := s.Live(); ls != nil {
		return ls.Checkpoint()
	}
	return nil
}

// Close checkpoints and releases the store's file handles.
func (s *Store) Close() error {
	err := s.Checkpoint()
	if ls := s.Live(); ls != nil {
		if cerr := ls.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Instrument wraps q so the /v1/stats chain walk finds the storage
// engine: the wrapper answers StoreStats() and passes every query
// through untouched.
func (s *Store) Instrument(q lbs.Querier) *Instrumented {
	return &Instrumented{inner: q, s: s}
}

// OpenLive opens the store's durable live database. With no prior
// state, gen() builds the base (packed at epoch 0). With a pack and
// WAL present, the base loads from the pack and the WAL's valid
// prefix replays on top, reconstructing the pre-crash overlay at the
// recorded epoch. The returned database journals every Apply batch
// to the WAL before it becomes visible.
func (s *Store) OpenLive(gen func() *lbs.Database, opts lbs.Options, lopts live.Options) (*live.Database, error) {
	if lopts.Journal != nil {
		return nil, fmt.Errorf("store: OpenLive owns the journal; lopts.Journal must be nil")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live != nil {
		return nil, fmt.Errorf("store: live database already open")
	}
	ls, err := openLiveStore(s, gen, opts, lopts)
	if err != nil {
		return nil, err
	}
	s.live = ls
	return ls.db, nil
}
