package store

// JobStore implements jobs.Store over per-job JSON files
// (<dir>/jobs/<id>.json, written atomically via temp + rename). One
// file per job keeps checkpoint writes independent — a torn write
// corrupts at most the one job, which recovery settles as failed with
// a typed reason instead of losing the whole table.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/jobs"
)

// JobStore persists jobs as individual JSON files.
type JobStore struct {
	dir string
	m   *Metrics
	mu  sync.Mutex // serializes writes per store (cheap: jobs are small)
}

var _ jobs.Store = (*JobStore)(nil)

func (js *JobStore) path(id string) string {
	// Job IDs are manager-generated ("job-<n>"); Base strips anything
	// path-like out of an ID that arrived from a recovered file.
	return filepath.Join(js.dir, filepath.Base(id)+".json")
}

// Save implements jobs.Store.
func (js *JobStore) Save(sj jobs.StoredJob) error {
	data, err := json.Marshal(sj)
	if err != nil {
		return err
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	path := js.path(sj.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load implements jobs.Store: every stored job, with undecodable
// entries marked Corrupt (their ID recovered from the filename) so
// the manager can settle them as unresumable instead of dropping them.
func (js *JobStore) Load() ([]jobs.StoredJob, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	ents, err := os.ReadDir(js.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []jobs.StoredJob
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(filepath.Join(js.dir, name))
		var sj jobs.StoredJob
		if err != nil || json.Unmarshal(data, &sj) != nil || sj.ID != id {
			out = append(out, jobs.StoredJob{ID: id, Corrupt: true})
			continue
		}
		out = append(out, sj)
	}
	return out, nil
}

// Delete implements jobs.Store.
func (js *JobStore) Delete(id string) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	err := os.Remove(js.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// RecordRecovery feeds a recovery's counts into the store metrics.
func (s *Store) RecordRecovery(rs jobs.RecoveryStats) {
	s.m.RecoveredJobs.Add(uint64(rs.Recovered))
	s.m.ResumedJobs.Add(uint64(rs.Resumed))
	s.m.UnresumableJobs.Add(uint64(rs.Unresumable))
}
