package store

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// sameBits compares floats as stored: the codec is bit-exact, so NaN
// payloads and signed zeros must survive unchanged.
func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func samePoint(a, b geom.Point) bool { return sameBits(a.X, b.X) && sameBits(a.Y, b.Y) }

// FuzzRecordDecode drives reader.tuple with arbitrary bytes: it must
// never panic (no unchecked index, no count-driven giant allocation),
// and whatever it accepts must re-encode canonically — decode ∘
// encode ∘ decode is the identity on accepted inputs.
func FuzzRecordDecode(f *testing.F) {
	seeds := []struct {
		t   lbs.Tuple
		eff geom.Point
	}{
		{lbs.Tuple{ID: 1, Loc: geom.Pt(0.5, 0.5)}, geom.Pt(0.5, 0.5)},
		{lbs.Tuple{ID: -7, Loc: geom.Pt(-122.4, 37.8), Name: "cafe", Category: "food"}, geom.Pt(-122.41, 37.81)},
		{lbs.Tuple{
			ID:       1 << 40,
			Loc:      geom.Pt(116.4, 39.9),
			Name:     "北京",
			Category: "poi",
			Attrs:    map[string]float64{"rating": 4.5, "price": 12},
			Tags:     map[string]string{"open": "24h", "wifi": "yes"},
		}, geom.Pt(116.4, 39.9)},
	}
	for _, s := range seeds {
		f.Add(appendTuple(nil, s.t, s.eff))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{b: data, intern: make(map[string]string)}
		tup, eff, err := r.tuple()
		if err != nil {
			return
		}
		if r.i > len(data) {
			t.Fatalf("reader overran its buffer: i=%d len=%d", r.i, len(data))
		}
		enc := appendTuple(nil, tup, eff)
		r2 := &reader{b: enc}
		tup2, eff2, err := r2.tuple()
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if r2.i != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", r2.i, len(enc))
		}
		if tup2.ID != tup.ID || !samePoint(tup2.Loc, tup.Loc) || !samePoint(eff2, eff) ||
			tup2.Name != tup.Name || tup2.Category != tup.Category ||
			len(tup2.Attrs) != len(tup.Attrs) || len(tup2.Tags) != len(tup.Tags) {
			t.Fatalf("round trip drifted: %+v vs %+v", tup, tup2)
		}
		for k, v := range tup.Attrs {
			v2, ok := tup2.Attrs[k]
			if !ok || !sameBits(v, v2) {
				t.Fatalf("attr %q drifted: %v vs %v", k, v, v2)
			}
		}
		for k, v := range tup.Tags {
			if tup2.Tags[k] != v {
				t.Fatalf("tag %q drifted", k)
			}
		}
		// The canonical encoding of the decoded record must itself be
		// stable under one more round.
		if enc2 := appendTuple(nil, tup2, eff2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not stable")
		}
	})
}
