package store

// The buffer pool keeps a bounded set of validated data pages in
// memory with clock (second-chance) eviction: each frame has a
// reference bit set on hit; the clock hand clears bits until it finds
// an unreferenced, unpinned frame to evict. Pinned frames (a scan is
// decoding them) are never evicted, so a page's bytes stay stable for
// exactly as long as a reader holds them. This is what lets a
// database larger than RAM back queries: residency is bounded by
// PoolPages × pageSize regardless of file size.

import (
	"fmt"
	"sync"
)

// DefaultPoolPages is the default buffer-pool budget (pages).
const DefaultPoolPages = 64

type frame struct {
	page int // which data page, -1 = empty
	buf  []byte
	ref  bool // clock reference bit
	pins int
}

type pool struct {
	src  *Pack
	m    *Metrics
	mu   sync.Mutex
	byNo map[int]int // page number → frame index
	fr   []frame
	hand int
}

func newPool(src *Pack, budget int, m *Metrics) *pool {
	if budget <= 0 {
		budget = DefaultPoolPages
	}
	p := &pool{src: src, m: m, byNo: make(map[int]int, budget), fr: make([]frame, budget)}
	for i := range p.fr {
		p.fr[i].page = -1
	}
	return p
}

// acquire returns page n's bytes, pinned: the caller must release(n)
// when done decoding. A miss reads and CRC-validates the page from
// disk, evicting by clock if the pool is full.
func (p *pool) acquire(n int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.byNo[n]; ok {
		f := &p.fr[i]
		f.ref = true
		f.pins++
		if p.m != nil {
			p.m.PoolHits.Add(1)
		}
		return f.buf, nil
	}
	i, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &p.fr[i]
	if f.page >= 0 {
		delete(p.byNo, f.page)
		if p.m != nil {
			p.m.PoolEvictions.Add(1)
		}
	}
	if f.buf == nil {
		f.buf = make([]byte, p.src.pageSize)
	}
	if err := p.src.readPage(n, f.buf); err != nil {
		f.page = -1
		return nil, err
	}
	if p.m != nil {
		p.m.PoolMisses.Add(1)
		p.m.PagesRead.Add(1)
	}
	f.page = n
	f.ref = true
	f.pins = 1
	p.byNo[n] = i
	return f.buf, nil
}

// release unpins page n.
func (p *pool) release(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if i, ok := p.byNo[n]; ok && p.fr[i].pins > 0 {
		p.fr[i].pins--
	}
}

// victimLocked runs the clock hand: skip pinned frames, clear set
// reference bits, take the first unreferenced unpinned frame. Two
// full sweeps with no victim means every frame is pinned — a caller
// bug (scans pin one page at a time), reported rather than spun on.
func (p *pool) victimLocked() (int, error) {
	for sweep := 0; sweep < 2*len(p.fr); sweep++ {
		i := p.hand
		p.hand = (p.hand + 1) % len(p.fr)
		f := &p.fr[i]
		if f.pins > 0 {
			continue
		}
		if f.page >= 0 && f.ref {
			f.ref = false
			continue
		}
		return i, nil
	}
	return 0, fmt.Errorf("store: buffer pool exhausted: all %d pages pinned", len(p.fr))
}

// resident reports how many pages the pool currently holds (tests).
func (p *pool) resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byNo)
}
