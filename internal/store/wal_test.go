package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// tortureFixture builds a store directory with a pack and a WAL of
// several applied batches, and a model of the database at every batch
// boundary epoch.
type tortureFixture struct {
	pack   []byte
	wal    []byte
	models map[uint64]*lbs.Database // epoch -> expected content
	maxEp  uint64
}

func buildTortureFixture(t *testing.T) tortureFixture {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir, Options{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *lbs.Database { return workload.USASchools(30, 5).DB }
	db, err := st.OpenLive(gen, lbs.Options{K: 5}, live.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}

	fx := tortureFixture{models: map[uint64]*lbs.Database{}}
	snap, ep := db.SnapshotAt()
	fx.models[ep] = snap

	ctx := context.Background()
	b := db.Bounds()
	for batch := 0; batch < 5; batch++ {
		var ops []live.Op
		// Two inserts, one move of an earlier insert, one delete of a
		// base tuple — every op kind goes through the WAL codec.
		for i := 0; i < 2; i++ {
			id := int64(1000 + batch*10 + i)
			ops = append(ops, live.Op{Kind: live.OpInsert, Tuple: lbs.Tuple{
				ID:   id,
				Loc:  geom.Pt(b.Min.X+float64(batch)*0.01, b.Min.Y+float64(i)*0.01),
				Name: fmt.Sprintf("poi-%d", id),
				Attrs: map[string]float64{
					"enrollment": float64(id),
				},
			}})
		}
		if batch > 0 {
			ops = append(ops, live.Op{Kind: live.OpMove, ID: int64(1000 + (batch-1)*10),
				Loc: geom.Pt(b.Max.X-float64(batch)*0.01, b.Max.Y)})
			ops = append(ops, live.Op{Kind: live.OpDelete, ID: int64(batch)})
		}
		for _, r := range db.Apply(ctx, ops) {
			if r.Err != nil {
				t.Fatalf("batch %d: %v", batch, r.Err)
			}
		}
		snap, ep := db.SnapshotAt()
		fx.models[ep] = snap
		fx.maxEp = ep
	}

	// Crash: release the handle without checkpointing — the pack stays
	// at epoch 0 and the WAL holds everything.
	if err := st.Live().Close(); err != nil {
		t.Fatal(err)
	}
	fx.pack, err = os.ReadFile(filepath.Join(dir, packFile))
	if err != nil {
		t.Fatal(err)
	}
	fx.wal, err = os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	return fx
}

// reopenTorture writes one (pack, wal-variant) pair into dir and
// reopens it, asserting the durability contract: either a typed
// *CorruptError, or a consistent prefix — the recovered database is
// byte-for-byte the model at the recovered epoch. It never panics and
// never returns a wrong answer.
func reopenTorture(t *testing.T, dir string, fx tortureFixture, walBytes []byte, label string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, packFile), fx.pack, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *lbs.Database {
		t.Fatalf("%s: gen called with a pack present", label)
		return nil
	}
	db, err := st.OpenLive(gen, lbs.Options{K: 5}, live.Options{CompactThreshold: -1})
	if err != nil {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: err = %v, want *CorruptError", label, err)
		}
		return
	}
	defer st.Live().Close()
	rec := st.Live().Recovery()
	model, ok := fx.models[rec.Epoch]
	if !ok {
		t.Fatalf("%s: recovered to epoch %d, not a batch boundary", label, rec.Epoch)
	}
	got, ep := db.SnapshotAt()
	if ep != rec.Epoch {
		t.Fatalf("%s: snapshot epoch %d != recovery epoch %d", label, ep, rec.Epoch)
	}
	sameTuples(t, model, got)
}

func TestWALTortureTruncateEveryOffset(t *testing.T) {
	fx := buildTortureFixture(t)
	dir := t.TempDir()
	for cut := 0; cut <= len(fx.wal); cut++ {
		reopenTorture(t, dir, fx, fx.wal[:cut], fmt.Sprintf("truncate@%d", cut))
	}
}

func TestWALTortureFlipEveryByte(t *testing.T) {
	fx := buildTortureFixture(t)
	dir := t.TempDir()
	for off := 0; off < len(fx.wal); off++ {
		mut := append([]byte(nil), fx.wal...)
		mut[off] ^= 0x80
		reopenTorture(t, dir, fx, mut, fmt.Sprintf("flip@%d", off))
	}
}

func TestWALRecoversFullLog(t *testing.T) {
	fx := buildTortureFixture(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, packFile), fx.pack, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), fx.wal, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	db, err := st.OpenLive(func() *lbs.Database { return nil }, lbs.Options{K: 5}, live.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Live().Close()
	rec := st.Live().Recovery()
	if !rec.Warm {
		t.Fatal("want warm recovery")
	}
	if rec.Epoch != fx.maxEp {
		t.Fatalf("recovered epoch %d, want %d", rec.Epoch, fx.maxEp)
	}
	if rec.Frames != 5 {
		t.Fatalf("replayed %d frames, want 5", rec.Frames)
	}
	got, _ := db.SnapshotAt()
	sameTuples(t, fx.models[fx.maxEp], got)
	if st.Stats().RecoveredOps == 0 {
		t.Fatal("recovered_ops counter not fed")
	}
}
