package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

// roundTrip packs db and opens it back.
func roundTrip(t *testing.T, db *lbs.Database, epoch uint64, pageSize, poolPages int) (*lbs.Database, uint64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.lbspack")
	if err := WritePack(path, db, epoch, pageSize, nil); err != nil {
		t.Fatalf("WritePack: %v", err)
	}
	got, gotEpoch, err := OpenDatabase(path, poolPages, nil)
	if err != nil {
		t.Fatalf("OpenDatabase: %v", err)
	}
	return got, gotEpoch
}

// sameAnswers pins the (dist, ID) bit-identity contract: both
// databases answer LR and LNR queries with identical records.
func sameAnswers(t *testing.T, want, got *lbs.Database, k int) {
	t.Helper()
	ws := lbs.NewService(want, lbs.Options{K: k})
	gs := lbs.NewService(got, lbs.Options{K: k})
	b := want.Bounds()
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		q := geom.Pt(
			b.Min.X+(b.Max.X-b.Min.X)*float64(i%8)/7,
			b.Min.Y+(b.Max.Y-b.Min.Y)*float64(i/8)/7,
		)
		wr, err := ws.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatalf("QueryLR(want): %v", err)
		}
		gr, err := gs.QueryLR(ctx, q, nil)
		if err != nil {
			t.Fatalf("QueryLR(got): %v", err)
		}
		if len(wr) != len(gr) {
			t.Fatalf("q%d: LR lengths differ: %d vs %d", i, len(wr), len(gr))
		}
		for j := range wr {
			if wr[j].ID != gr[j].ID || wr[j].Dist != gr[j].Dist {
				t.Fatalf("q%d record %d: LR (dist,ID) differ: (%v,%d) vs (%v,%d)",
					i, j, wr[j].Dist, wr[j].ID, gr[j].Dist, gr[j].ID)
			}
		}
		wn, err := ws.QueryLNR(ctx, q, nil)
		if err != nil {
			t.Fatalf("QueryLNR(want): %v", err)
		}
		gn, err := gs.QueryLNR(ctx, q, nil)
		if err != nil {
			t.Fatalf("QueryLNR(got): %v", err)
		}
		if len(wn) != len(gn) {
			t.Fatalf("q%d: LNR lengths differ: %d vs %d", i, len(wn), len(gn))
		}
		for j := range wn {
			if wn[j].ID != gn[j].ID {
				t.Fatalf("q%d record %d: LNR IDs differ: %d vs %d", i, j, wn[j].ID, gn[j].ID)
			}
		}
	}
}

// sameTuples pins tuple-level identity, effective locations included.
func sameTuples(t *testing.T, want, got *lbs.Database) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("lengths differ: %d vs %d", want.Len(), got.Len())
	}
	if want.Bounds() != got.Bounds() {
		t.Fatalf("bounds differ: %+v vs %+v", want.Bounds(), got.Bounds())
	}
	for i := 0; i < want.Len(); i++ {
		id := want.Tuple(i).ID
		wt, _ := want.ByID(id)
		gt, ok := got.ByID(id)
		if !ok {
			t.Fatalf("tuple %d missing after round trip", id)
		}
		if wt.Loc != gt.Loc || wt.Name != gt.Name || wt.Category != gt.Category {
			t.Fatalf("tuple %d differs: %+v vs %+v", id, wt, gt)
		}
		if len(wt.Attrs) != len(gt.Attrs) || len(wt.Tags) != len(gt.Tags) {
			t.Fatalf("tuple %d attr/tag counts differ", id)
		}
		for k, v := range wt.Attrs {
			if gt.Attrs[k] != v {
				t.Fatalf("tuple %d attr %q: %v vs %v", id, k, v, gt.Attrs[k])
			}
		}
		for k, v := range wt.Tags {
			if gt.Tags[k] != v {
				t.Fatalf("tuple %d tag %q: %v vs %v", id, k, v, gt.Tags[k])
			}
		}
		we, _ := want.EffectiveByID(id)
		ge, _ := got.EffectiveByID(id)
		if we != ge {
			t.Fatalf("tuple %d effective location differs: %v vs %v", id, we, ge)
		}
	}
}

func TestPackRoundTripBitIdentical(t *testing.T) {
	sc := workload.USASchools(500, 7)
	got, epoch := roundTrip(t, sc.DB, 0, 0, 0)
	if epoch != 0 {
		t.Fatalf("epoch = %d, want 0", epoch)
	}
	sameTuples(t, sc.DB, got)
	sameAnswers(t, sc.DB, got, 10)
}

func TestPackRoundTripObfuscated(t *testing.T) {
	// WeChat obfuscates: effective locations differ from true ones, and
	// the pack must carry both verbatim.
	sc := workload.WeChatChina(400, 11)
	shifted := false
	for i := 0; i < sc.DB.Len() && !shifted; i++ {
		shifted = sc.DB.EffectiveLoc(i) != sc.DB.Tuple(i).Loc
	}
	if !shifted {
		t.Fatal("scenario not obfuscated; test is vacuous")
	}
	got, _ := roundTrip(t, sc.DB, 42, 512, 4)
	sameTuples(t, sc.DB, got)
	sameAnswers(t, sc.DB, got, 10)
}

func TestPackDeterministicBytes(t *testing.T) {
	sc := workload.USASchools(200, 3)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := WritePack(a, sc.DB, 5, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := WritePack(b, sc.DB, 5, 0, nil); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	dbb, _ := os.ReadFile(b)
	if string(da) != string(dbb) {
		t.Fatal("same database packed twice produced different bytes")
	}
}

func TestPoolBoundedResidency(t *testing.T) {
	sc := workload.USASchools(2000, 9)
	path := filepath.Join(t.TempDir(), "db.lbspack")
	if err := WritePack(path, sc.DB, 0, 512, nil); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	p, err := OpenPack(path, 3, &m)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.npages <= 3 {
		t.Fatalf("want more pages than the pool budget, got %d", p.npages)
	}
	// Two full scans: residency never exceeds the budget, evictions
	// happen, and the second scan still decodes every tuple.
	for pass := 0; pass < 2; pass++ {
		n := 0
		err := p.Scan(func(lbs.Tuple, geom.Point) error {
			if r := p.pool.resident(); r > 3 {
				t.Fatalf("pool holds %d pages, budget 3", r)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("scan %d: %v", pass, err)
		}
		if n != sc.DB.Len() {
			t.Fatalf("scan %d decoded %d tuples, want %d", pass, n, sc.DB.Len())
		}
	}
	if m.PoolEvictions.Load() == 0 {
		t.Fatal("expected evictions with pool smaller than file")
	}
	if m.PagesRead.Load() != m.PoolMisses.Load() {
		t.Fatalf("pages read %d != pool misses %d", m.PagesRead.Load(), m.PoolMisses.Load())
	}
}

func TestPackCorruptionTyped(t *testing.T) {
	sc := workload.USASchools(300, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lbspack")
	if err := WritePack(path, sc.DB, 0, 512, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in every page (header included), one variant per
	// page: open+scan must fail with *CorruptError, never panic, never
	// silently succeed with different contents.
	for page := 0; page*512 < len(data); page++ {
		mut := append([]byte(nil), data...)
		off := page*512 + 100
		if page == 0 {
			// Page 0 is the header; only its first headerSize bytes are
			// checksummed, the rest is padding. Hit the bounds field.
			off = 24
		}
		mut[off] ^= 0x40
		bad := filepath.Join(dir, "bad.lbspack")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := OpenDatabase(bad, 0, nil)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("page %d flip: err = %v, want *CorruptError", page, err)
		}
	}
	// Truncation is corruption too.
	if err := os.WriteFile(path, data[:len(data)-512], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenDatabase(path, 0, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated pack: err = %v, want *CorruptError", err)
	}
}

func TestNewDatabaseFromStoreRejectsDuplicateIDs(t *testing.T) {
	dup := dupSource{}
	if _, err := lbs.NewDatabaseFromStore(dup); err == nil {
		t.Fatal("duplicate IDs must be an error, not a panic downstream")
	}
}

type dupSource struct{}

func (dupSource) Bounds() geom.Rect { return geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)} }
func (dupSource) Len() int          { return 2 }
func (dupSource) Scan(fn func(lbs.Tuple, geom.Point) error) error {
	for i := 0; i < 2; i++ {
		if err := fn(lbs.Tuple{ID: 7, Loc: geom.Pt(0.5, 0.5)}, geom.Pt(0.5, 0.5)); err != nil {
			return err
		}
	}
	return nil
}
