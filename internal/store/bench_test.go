package store

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

// benchFixtureFiles writes the same 10k-tuple city as lbsgen JSON and
// as a .lbspack, returning both paths.
func benchFixtureFiles(b *testing.B, n int) (jsonPath, packPath string) {
	b.Helper()
	sc := workload.USASchools(n, 7)
	dir := b.TempDir()

	packPath = filepath.Join(dir, "city.lbspack")
	if err := WritePack(packPath, sc.DB, 0, 0, nil); err != nil {
		b.Fatal(err)
	}

	ds := Dataset{
		Scenario: sc.Name,
		MinX:     sc.Bounds.Min.X, MinY: sc.Bounds.Min.Y,
		MaxX: sc.Bounds.Max.X, MaxY: sc.Bounds.Max.Y,
	}
	for i := 0; i < sc.DB.Len(); i++ {
		tp := sc.DB.Tuple(i)
		ds.Tuples = append(ds.Tuples, DatasetTuple{
			ID: tp.ID, X: tp.Loc.X, Y: tp.Loc.Y,
			Name: tp.Name, Category: tp.Category, Attrs: tp.Attrs, Tags: tp.Tags,
		})
	}
	data, err := json.Marshal(ds)
	if err != nil {
		b.Fatal(err)
	}
	jsonPath = filepath.Join(dir, "city.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		b.Fatal(err)
	}
	return jsonPath, packPath
}

// BenchmarkColdStartJSON10k is the restart path without the store:
// re-parse the lbsgen JSON export and rebuild the index from scratch.
func BenchmarkColdStartJSON10k(b *testing.B) {
	jsonPath, _ := benchFixtureFiles(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := LoadDataset(jsonPath, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() != 10_000 {
			b.Fatal("bad load")
		}
	}
}

// BenchmarkWarmStartPack10k is the same restart through the store: a
// paged scan of the pack into the index, no JSON in sight.
func BenchmarkWarmStartPack10k(b *testing.B) {
	_, packPath := benchFixtureFiles(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := LoadDataset(packPath, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() != 10_000 {
			b.Fatal("bad load")
		}
	}
}

// BenchmarkPackScanBoundedPool streams a pack through a buffer pool
// far smaller than the file — the larger-than-RAM shape: every page
// faults, decodes and evicts, and throughput is the page pipeline.
func BenchmarkPackScanBoundedPool(b *testing.B) {
	_, packPath := benchFixtureFiles(b, 10_000)
	var m Metrics
	p, err := OpenPack(packPath, 4, &m)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := p.Scan(func(lbs.Tuple, geom.Point) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10_000 {
			b.Fatal("short scan")
		}
	}
	b.ReportMetric(float64(10_000), "tuples/scan")
}

// BenchmarkWALAppend measures the durable-mutation hot path: one
// insert batch journaled (unsynced) per iteration.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	gen := func() *lbs.Database { return workload.USASchools(1000, 7).DB }
	db, err := st.OpenLive(gen, lbs.Options{K: 5}, live.Options{CompactThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Live().Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := insertOps(100_000+i*8, 8)
		for _, r := range db.Apply(ctx, ops) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
