package store

// Instrumented is the chain-walk handle for the storage engine: it
// decorates a Querier without touching any query (pure pass-through)
// and answers StoreStats(), so the /v1/stats walker — which descends
// a Scoped→Cached→…→Service stack through lbs.Wrapper — finds the
// engine's counters wherever the wrapper sits in the stack.

import (
	"context"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Instrumented passes queries through while exposing store stats.
type Instrumented struct {
	inner lbs.Querier
	s     *Store
}

var _ lbs.Querier = (*Instrumented)(nil)
var _ lbs.Wrapper = (*Instrumented)(nil)

// Inner implements lbs.Wrapper.
func (i *Instrumented) Inner() lbs.Querier { return i.inner }

// StoreStats reports the engine counters; the stats endpoint probes
// for exactly this method.
func (i *Instrumented) StoreStats() Stats { return i.s.Stats() }

// QueryLR implements lbs.Querier.
func (i *Instrumented) QueryLR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LRRecord, error) {
	return i.inner.QueryLR(ctx, q, filter)
}

// QueryLNR implements lbs.Querier.
func (i *Instrumented) QueryLNR(ctx context.Context, q geom.Point, filter lbs.Filter) ([]lbs.LNRRecord, error) {
	return i.inner.QueryLNR(ctx, q, filter)
}

// QueryLRBatch implements lbs.Querier.
func (i *Instrumented) QueryLRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LRRecord, error) {
	return i.inner.QueryLRBatch(ctx, pts, filter)
}

// QueryLNRBatch implements lbs.Querier.
func (i *Instrumented) QueryLNRBatch(ctx context.Context, pts []geom.Point, filter lbs.Filter) ([][]lbs.LNRRecord, error) {
	return i.inner.QueryLNRBatch(ctx, pts, filter)
}

// Bounds implements lbs.Querier.
func (i *Instrumented) Bounds() geom.Rect { return i.inner.Bounds() }

// K implements lbs.Querier.
func (i *Instrumented) K() int { return i.inner.K() }

// QueryCount implements lbs.Querier.
func (i *Instrumented) QueryCount() int64 { return i.inner.QueryCount() }
