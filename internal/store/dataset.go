package store

// Dataset loading: anywhere a command takes a dataset path it accepts
// either the lbsgen JSON export (parsed and rebuilt, the cold path)
// or a .lbspack (paged scan, the warm path). The extension decides.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/geo"
	"repro/internal/geom"
	"repro/internal/lbs"
)

// DatasetTuple is the JSON tuple shape lbsgen writes.
type DatasetTuple struct {
	ID       int64              `json:"id"`
	X        float64            `json:"x"`
	Y        float64            `json:"y"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

// Dataset is the JSON dataset shape lbsgen writes.
type Dataset struct {
	Scenario string  `json:"scenario"`
	MinX     float64 `json:"min_x"`
	MinY     float64 `json:"min_y"`
	MaxX     float64 `json:"max_x"`
	MaxY     float64 `json:"max_y"`
	// Metric names the distance metric the coordinates are laid out for
	// (euclidean | haversine); absent in pre-geodesic exports, which
	// load as euclidean.
	Metric string         `json:"metric,omitempty"`
	Tuples []DatasetTuple `json:"tuples"`
}

// Database builds the in-memory database a JSON dataset describes
// (effective locations equal true locations: the JSON export does not
// carry obfuscation).
func (d *Dataset) Database() *lbs.Database {
	tuples := make([]lbs.Tuple, len(d.Tuples))
	for i, jt := range d.Tuples {
		tuples[i] = lbs.Tuple{
			ID: jt.ID, Loc: geom.Pt(jt.X, jt.Y),
			Name: jt.Name, Category: jt.Category,
			Attrs: jt.Attrs, Tags: jt.Tags,
		}
	}
	bounds := geom.Rect{Min: geom.Pt(d.MinX, d.MinY), Max: geom.Pt(d.MaxX, d.MaxY)}
	return lbs.NewDatabase(bounds, tuples)
}

// LoadDataset opens a dataset file by extension: .lbspack through the
// paged store, anything else as lbsgen JSON.
func LoadDataset(path string, poolPages int, m *Metrics) (*lbs.Database, error) {
	db, _, err := LoadDatasetMetric(path, poolPages, m)
	return db, err
}

// DatasetMetric probes which distance metric a dataset file records
// (pack header field or JSON "metric"; absent = Euclidean) without
// materializing the database.
func DatasetMetric(path string) (geo.Metric, error) {
	if strings.EqualFold(filepath.Ext(path), ".lbspack") {
		p, err := OpenPack(path, 1, nil)
		if err != nil {
			return geo.Euclidean, err
		}
		defer p.Close()
		return p.Metric(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return geo.Euclidean, err
	}
	var hdr struct {
		Metric string `json:"metric"`
	}
	if err := json.Unmarshal(data, &hdr); err != nil {
		return geo.Euclidean, fmt.Errorf("store: %s: %w", path, err)
	}
	m, err := geo.ParseMetric(hdr.Metric)
	if err != nil {
		return geo.Euclidean, fmt.Errorf("store: %s: %w", path, err)
	}
	return m, nil
}

// LoadDatasetMetric is LoadDataset plus the distance metric the file
// records (pack header field or JSON "metric"; absent = Euclidean),
// so callers can refuse to serve a dataset under the wrong metric.
func LoadDatasetMetric(path string, poolPages int, m *Metrics) (*lbs.Database, geo.Metric, error) {
	if strings.EqualFold(filepath.Ext(path), ".lbspack") {
		db, _, metric, err := OpenDatabaseMetric(path, poolPages, m)
		return db, metric, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, geo.Euclidean, err
	}
	var ds Dataset
	if err := json.Unmarshal(data, &ds); err != nil {
		return nil, geo.Euclidean, fmt.Errorf("store: %s: %w", path, err)
	}
	metric, err := geo.ParseMetric(ds.Metric)
	if err != nil {
		return nil, geo.Euclidean, fmt.Errorf("store: %s: %w", path, err)
	}
	return ds.Database(), metric, nil
}
