package store

// Dataset loading: anywhere a command takes a dataset path it accepts
// either the lbsgen JSON export (parsed and rebuilt, the cold path)
// or a .lbspack (paged scan, the warm path). The extension decides.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// DatasetTuple is the JSON tuple shape lbsgen writes.
type DatasetTuple struct {
	ID       int64              `json:"id"`
	X        float64            `json:"x"`
	Y        float64            `json:"y"`
	Name     string             `json:"name,omitempty"`
	Category string             `json:"category,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Tags     map[string]string  `json:"tags,omitempty"`
}

// Dataset is the JSON dataset shape lbsgen writes.
type Dataset struct {
	Scenario string         `json:"scenario"`
	MinX     float64        `json:"min_x"`
	MinY     float64        `json:"min_y"`
	MaxX     float64        `json:"max_x"`
	MaxY     float64        `json:"max_y"`
	Tuples   []DatasetTuple `json:"tuples"`
}

// Database builds the in-memory database a JSON dataset describes
// (effective locations equal true locations: the JSON export does not
// carry obfuscation).
func (d *Dataset) Database() *lbs.Database {
	tuples := make([]lbs.Tuple, len(d.Tuples))
	for i, jt := range d.Tuples {
		tuples[i] = lbs.Tuple{
			ID: jt.ID, Loc: geom.Pt(jt.X, jt.Y),
			Name: jt.Name, Category: jt.Category,
			Attrs: jt.Attrs, Tags: jt.Tags,
		}
	}
	bounds := geom.Rect{Min: geom.Pt(d.MinX, d.MinY), Max: geom.Pt(d.MaxX, d.MaxY)}
	return lbs.NewDatabase(bounds, tuples)
}

// LoadDataset opens a dataset file by extension: .lbspack through the
// paged store, anything else as lbsgen JSON.
func LoadDataset(path string, poolPages int, m *Metrics) (*lbs.Database, error) {
	if strings.EqualFold(filepath.Ext(path), ".lbspack") {
		db, _, err := OpenDatabase(path, poolPages, m)
		return db, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ds Dataset
	if err := json.Unmarshal(data, &ds); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return ds.Database(), nil
}
