package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// TestLoadDatasetBothFormats pins that the same scenario loaded from
// the lbsgen JSON export and from a .lbspack answers identically —
// .lbspack is a drop-in wherever a dataset path is taken.
func TestLoadDatasetBothFormats(t *testing.T) {
	sc := workload.USASchools(150, 3)
	dir := t.TempDir()

	packPath := filepath.Join(dir, "city.lbspack")
	if err := WritePack(packPath, sc.DB, 0, 0, nil); err != nil {
		t.Fatal(err)
	}

	ds := Dataset{
		Scenario: sc.Name,
		MinX:     sc.Bounds.Min.X, MinY: sc.Bounds.Min.Y,
		MaxX: sc.Bounds.Max.X, MaxY: sc.Bounds.Max.Y,
	}
	for i := 0; i < sc.DB.Len(); i++ {
		tp := sc.DB.Tuple(i)
		ds.Tuples = append(ds.Tuples, DatasetTuple{
			ID: tp.ID, X: tp.Loc.X, Y: tp.Loc.Y,
			Name: tp.Name, Category: tp.Category, Attrs: tp.Attrs, Tags: tp.Tags,
		})
	}
	data, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "city.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fromPack, err := LoadDataset(packPath, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadDataset(jsonPath, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, sc.DB, fromPack)
	sameTuples(t, fromJSON, fromPack)
	sameAnswers(t, fromJSON, fromPack, 5)
}
