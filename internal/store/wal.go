package store

// The write-ahead log: one frame per journaled Apply batch, appended
// before the batch's snapshot swap becomes visible.
//
//	header: magic "LBSWAL01" · u64 checkpointEpoch · u32 crc
//	frame:  u32 len · u32 crc(payload) · payload
//	payload: u64 epochBefore · u32 nops · ops
//	op:     u8 kind · insert → tuple record
//	                · delete → varint id
//	                · move   → varint id · 2×f64 destination
//
// Recovery reads the longest valid prefix: the first frame whose
// length is implausible, whose checksum mismatches, or whose bytes
// run past EOF ends the log — everything before it is a consistent
// prefix of epochs (frames are whole batches, and batches are the
// atomicity unit of the live database). Only an unreadable header is
// a *CorruptError: with no trustworthy checkpoint epoch nothing can
// be replayed safely.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/live"
)

const (
	walMagic      = "LBSWAL01"
	walHeaderSize = 8 + 8 + 4
	// maxFrameSize bounds a frame's declared length so a corrupt length
	// field cannot drive a huge allocation.
	maxFrameSize = 64 << 20
)

// walFrame is one decoded batch.
type walFrame struct {
	epochBefore uint64
	ops         []live.Op
}

func (f *walFrame) epochAfter() uint64 { return f.epochBefore + uint64(len(f.ops)) }

// encodeFrame builds the on-disk bytes of one batch.
func encodeFrame(epochBefore uint64, ops []live.Op) ([]byte, error) {
	payload := binary.LittleEndian.AppendUint64(nil, epochBefore)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(ops)))
	for _, op := range ops {
		payload = append(payload, byte(op.Kind))
		switch op.Kind {
		case live.OpInsert:
			// A live insert places the tuple at its own location; the
			// effective slot is unused on decode but keeps one record codec.
			payload = appendTuple(payload, op.Tuple, op.Tuple.Loc)
		case live.OpDelete:
			payload = binary.AppendVarint(payload, op.ID)
		case live.OpMove:
			payload = binary.AppendVarint(payload, op.ID)
			payload = appendF64(payload, op.Loc.X)
			payload = appendF64(payload, op.Loc.Y)
		default:
			return nil, fmt.Errorf("store: cannot journal op kind %d", op.Kind)
		}
	}
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return append(frame, payload...), nil
}

// decodePayload parses a checksum-valid payload.
func decodePayload(payload []byte) (walFrame, error) {
	var f walFrame
	if len(payload) < 12 {
		return f, fmt.Errorf("short payload (%d bytes)", len(payload))
	}
	f.epochBefore = binary.LittleEndian.Uint64(payload)
	nops := binary.LittleEndian.Uint32(payload[8:])
	r := &reader{b: payload, i: 12}
	f.ops = make([]live.Op, 0, nops)
	for j := uint32(0); j < nops; j++ {
		if r.i >= len(r.b) {
			return f, fmt.Errorf("op %d: truncated", j)
		}
		kind := live.OpKind(r.b[r.i])
		r.i++
		var op live.Op
		op.Kind = kind
		var err error
		switch kind {
		case live.OpInsert:
			op.Tuple, _, err = r.tuple()
		case live.OpDelete:
			op.ID, err = r.varint()
		case live.OpMove:
			if op.ID, err = r.varint(); err == nil {
				op.Loc, err = r.point()
			}
		default:
			err = fmt.Errorf("unknown op kind %d", kind)
		}
		if err != nil {
			return f, fmt.Errorf("op %d: %w", j, err)
		}
		f.ops = append(f.ops, op)
	}
	return f, nil
}

// wal is an open log: an append handle plus the header's checkpoint
// epoch. Appends are serialized by the owning LiveStore.
type wal struct {
	f     *os.File
	path  string
	ckpt  uint64 // checkpoint epoch in the header
	sync_ bool
	m     *Metrics
}

// createWAL writes a fresh log (atomically) whose header records
// checkpointEpoch, pre-seeded with frames (used by rotation to carry
// batches newer than the checkpoint across the truncation).
func createWAL(path string, checkpointEpoch uint64, frames []walFrame, sync bool, m *Metrics) (*wal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, checkpointEpoch)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	w := &wal{f: f, path: path, ckpt: checkpointEpoch, sync_: sync, m: m}
	for _, fr := range frames {
		if err := w.append(fr.epochBefore, fr.ops); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return w, nil
}

// openWALForAppend opens an existing, already-validated log at its
// end. valid is the byte length of the recovered prefix — appending
// starts there, so a corrupt tail is overwritten rather than extended.
func openWALForAppend(path string, checkpointEpoch uint64, valid int64, sync bool, m *Metrics) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, ckpt: checkpointEpoch, sync_: sync, m: m}, nil
}

// append journals one batch.
func (w *wal) append(epochBefore uint64, ops []live.Op) error {
	frame, err := encodeFrame(epochBefore, ops)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	if w.sync_ {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if w.m != nil {
		w.m.WALBytes.Add(uint64(len(frame)))
		w.m.WALFrames.Add(1)
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// readWAL reads path's header and its longest valid prefix of frames.
// It returns the checkpoint epoch, the decoded frames, and the byte
// offset where the valid prefix ends (where appends may resume). An
// unreadable header is a *CorruptError; a damaged tail just ends the
// prefix.
func readWAL(path string) (ckpt uint64, frames []walFrame, valid int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(data) < walHeaderSize {
		return 0, nil, 0, corrupt(path, "short WAL header (%d bytes)", len(data))
	}
	if string(data[:8]) != walMagic {
		return 0, nil, 0, corrupt(path, "bad WAL magic %q", data[:8])
	}
	wantCRC := binary.LittleEndian.Uint32(data[16:])
	if got := crc32.ChecksumIEEE(data[:16]); got != wantCRC {
		return 0, nil, 0, corrupt(path, "WAL header checksum %08x, want %08x", got, wantCRC)
	}
	ckpt = binary.LittleEndian.Uint64(data[8:])
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			break // clean EOF or truncated frame header: prefix ends here
		}
		n := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if uint64(n) > maxFrameSize || int64(len(rest)) < 8+int64(n) {
			break // implausible length or truncated payload
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn or flipped bytes
		}
		fr, derr := decodePayload(payload)
		if derr != nil {
			break // checksum passed but contents malformed: stop trusting
		}
		frames = append(frames, fr)
		off += 8 + int64(n)
	}
	return ckpt, frames, off, nil
}
