package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/workload"
)

func openTestLive(t *testing.T, dir string) (*Store, *live.Database) {
	t.Helper()
	st, err := Open(dir, Options{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *lbs.Database { return workload.USASchools(30, 5).DB }
	db, err := st.OpenLive(gen, lbs.Options{K: 5}, live.Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	return st, db
}

func insertOps(start, n int) []live.Op {
	ops := make([]live.Op, n)
	for i := range ops {
		id := int64(start + i)
		ops[i] = live.Op{Kind: live.OpInsert, Tuple: lbs.Tuple{
			ID: id, Loc: geom.Pt(-100+float64(i)*0.01, 40), Name: fmt.Sprintf("t%d", id),
		}}
	}
	return ops
}

func applyAll(t *testing.T, db *live.Database, ops []live.Op) {
	t.Helper()
	for _, r := range db.Apply(context.Background(), ops) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestLiveStoreReopenRestoresEpochAndContent(t *testing.T) {
	dir := t.TempDir()
	st, db := openTestLive(t, dir)
	applyAll(t, db, insertOps(2000, 7))
	want, wantEp := db.SnapshotAt()
	if err := st.Live().Close(); err != nil { // crash: no checkpoint
		t.Fatal(err)
	}

	st2, db2 := openTestLive(t, dir)
	defer st2.Live().Close()
	rec := st2.Live().Recovery()
	if !rec.Warm || rec.Epoch != wantEp {
		t.Fatalf("recovery %+v, want warm at epoch %d", rec, wantEp)
	}
	got, ep := db2.SnapshotAt()
	if ep != wantEp {
		t.Fatalf("epoch %d, want %d", ep, wantEp)
	}
	sameTuples(t, want, got)
	sameAnswers(t, want, got, 5)
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, db := openTestLive(t, dir)
	applyAll(t, db, insertOps(2000, 7))
	walPath := filepath.Join(dir, walFile)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() <= int64(walHeaderSize) {
		t.Fatalf("WAL empty (%d bytes) after a batch", before.Size())
	}
	want, wantEp := db.SnapshotAt()

	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != int64(walHeaderSize) {
		t.Fatalf("WAL is %d bytes after checkpoint, want bare header (%d)", after.Size(), walHeaderSize)
	}
	if st.Stats().Checkpoints != 1 {
		t.Fatalf("checkpoints counter = %d, want 1", st.Stats().Checkpoints)
	}
	st.Live().Close()

	// The pack alone now carries the state; reopen replays nothing.
	st2, db2 := openTestLive(t, dir)
	defer st2.Live().Close()
	rec := st2.Live().Recovery()
	if rec.Frames != 0 || rec.Epoch != wantEp {
		t.Fatalf("recovery %+v, want 0 frames at epoch %d", rec, wantEp)
	}
	got, _ := db2.SnapshotAt()
	sameTuples(t, want, got)
}

func TestReplaySkipsFramesAlreadyInPack(t *testing.T) {
	// A crash between the pack rename and the WAL rotation leaves a
	// newer pack with the full old WAL. Recovery must skip the frames
	// the pack already contains instead of double-applying them.
	dir := t.TempDir()
	st, db := openTestLive(t, dir)
	applyAll(t, db, insertOps(2000, 4))
	applyAll(t, db, insertOps(3000, 4))
	want, wantEp := db.SnapshotAt()
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil { // renames the pack at wantEp...
		t.Fatal(err)
	}
	st.Live().Close()
	// ...then "crash before rotation": restore the pre-checkpoint WAL.
	if err := os.WriteFile(filepath.Join(dir, walFile), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, db2 := openTestLive(t, dir)
	defer st2.Live().Close()
	rec := st2.Live().Recovery()
	if rec.Frames != 0 {
		t.Fatalf("replayed %d frames already inside the pack", rec.Frames)
	}
	got, ep := db2.SnapshotAt()
	if ep != wantEp {
		t.Fatalf("epoch %d, want %d", ep, wantEp)
	}
	sameTuples(t, want, got)
}

func TestMutationsAfterReopenAreJournaled(t *testing.T) {
	dir := t.TempDir()
	st, db := openTestLive(t, dir)
	applyAll(t, db, insertOps(2000, 3))
	st.Live().Close()

	st2, db2 := openTestLive(t, dir)
	applyAll(t, db2, insertOps(3000, 3))
	want, wantEp := db2.SnapshotAt()
	st2.Live().Close()

	st3, db3 := openTestLive(t, dir)
	defer st3.Live().Close()
	got, ep := db3.SnapshotAt()
	if ep != wantEp {
		t.Fatalf("epoch %d, want %d", ep, wantEp)
	}
	sameTuples(t, want, got)
}

func TestConcurrentApplyAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, db := openTestLive(t, dir)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			applyAll(t, db, insertOps(5000+i*10, 3))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := st.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	want, wantEp := db.SnapshotAt()
	if err := st.Close(); err != nil { // clean shutdown: final checkpoint
		t.Fatal(err)
	}

	st2, db2 := openTestLive(t, dir)
	defer st2.Live().Close()
	got, ep := db2.SnapshotAt()
	if ep != wantEp {
		t.Fatalf("epoch %d, want %d", ep, wantEp)
	}
	sameTuples(t, want, got)
}

func TestOpenLiveRejectsCallerJournal(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *lbs.Database { return workload.USASchools(10, 1).DB }
	_, err = st.OpenLive(gen, lbs.Options{K: 2}, live.Options{Journal: badJournal{}})
	if err == nil {
		t.Fatal("OpenLive accepted a caller-supplied journal")
	}
}

type badJournal struct{}

func (badJournal) Append(uint64, []live.Op) error { return nil }

func TestOpenOrCreateDatabaseWarmPath(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	gen := func() *lbs.Database { calls++; return workload.USASchools(100, 3).DB }
	db, warm, err := st.OpenOrCreateDatabase(gen)
	if err != nil {
		t.Fatal(err)
	}
	if warm || calls != 1 {
		t.Fatalf("first open: warm=%v calls=%d, want cold single build", warm, calls)
	}

	st2, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	db2, warm, err := st2.OpenOrCreateDatabase(gen)
	if err != nil {
		t.Fatal(err)
	}
	if !warm || calls != 1 {
		t.Fatalf("second open: warm=%v calls=%d, want warm without rebuilding", warm, calls)
	}
	sameTuples(t, db, db2)
	sameAnswers(t, db, db2, 5)
}
