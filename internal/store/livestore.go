package store

// LiveStore pairs a live.Database with its durable form: a .lbspack
// checkpoint of the last flattened snapshot plus a WAL of every batch
// applied since. The lifecycle:
//
//	open    — load the pack (or build cold via gen and pack it),
//	          replay the WAL's valid prefix on top, attach the journal
//	Apply   — live.Database journals the batch (under this store's
//	          lock) before the snapshot swap makes it visible
//	Checkpoint — write a fresh pack at the current epoch, then rotate
//	          the WAL: batches newer than the checkpoint (an Apply
//	          that journaled while the pack was writing) carry over,
//	          everything older truncates away
//
// The pack renames before the WAL rotates, so a crash between the two
// leaves a newer pack with an older WAL; replay skips frames whose
// epochs the pack already contains, which makes the pair consistent
// in every crash position.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/geo"
	"repro/internal/lbs"
	"repro/internal/live"
)

// Recovery describes what opening a LiveStore found.
type Recovery struct {
	// Warm is true when a pack existed (false = cold ingest via gen).
	Warm bool
	// Epoch is the live epoch the database recovered to (pack epoch +
	// replayed WAL batches).
	Epoch uint64
	// Frames and Ops count the WAL prefix replayed on top of the pack.
	Frames int
	Ops    int
}

// LiveStore is the durable side of one live database. Its mutex
// serializes WAL appends (via the journal hook) against checkpoints,
// so a rotation never loses a concurrent batch.
type LiveStore struct {
	s  *Store
	db *live.Database

	mu  sync.Mutex
	w   *wal
	rec Recovery
}

// journalHook adapts the LiveStore to live.Journal.
type journalHook struct{ ls *LiveStore }

func (j journalHook) Append(epochBefore uint64, ops []live.Op) error {
	j.ls.mu.Lock()
	defer j.ls.mu.Unlock()
	return j.ls.w.append(epochBefore, ops)
}

func openLiveStore(s *Store, gen func() *lbs.Database, opts lbs.Options, lopts live.Options) (*LiveStore, error) {
	packPath := s.PackPath()
	walPath := filepath.Join(s.dir, walFile)
	ls := &LiveStore{s: s}

	var base *lbs.Database
	var packEpoch uint64
	if _, err := os.Stat(packPath); err == nil {
		var metric geo.Metric
		base, packEpoch, metric, err = OpenDatabaseMetric(packPath, s.opts.PoolPages, &s.m)
		if err != nil {
			return nil, err
		}
		if metric != s.opts.Metric {
			return nil, fmt.Errorf("store: %s: pack written for metric %s, store configured for %s", packPath, metric, s.opts.Metric)
		}
		ls.rec.Warm = true
	} else {
		base = gen()
		if err := WritePackMetric(packPath, base, s.opts.Metric, 0, s.opts.PageSize, &s.m); err != nil {
			return nil, err
		}
	}

	lopts.Journal = nil
	lopts.StartEpoch = packEpoch
	db, err := live.New(base, opts, lopts)
	if err != nil {
		return nil, err
	}
	ls.db = db
	ls.rec.Epoch = packEpoch

	if _, err := os.Stat(walPath); err == nil {
		ckpt, frames, _, err := readWAL(walPath)
		if err != nil {
			return nil, err // *CorruptError: the header cannot be trusted
		}
		validEnd := int64(walHeaderSize)
		cur := packEpoch
		for _, fr := range frames {
			end := validEnd + 8 + int64(frameLen(fr))
			if fr.epochAfter() <= packEpoch {
				// Already inside the pack (a checkpoint raced a crash
				// between the pack rename and the WAL rotation). Keep the
				// bytes, skip the replay.
				validEnd = end
				continue
			}
			if fr.epochBefore != cur {
				// The chain from the pack epoch breaks here; everything
				// before is a consistent prefix, nothing after is safe.
				break
			}
			if !ls.replay(fr) {
				break
			}
			cur = fr.epochAfter()
			validEnd = end
		}
		ls.rec.Epoch = cur
		ls.w, err = openWALForAppend(walPath, ckpt, validEnd, s.opts.SyncWAL, &s.m)
		if err != nil {
			return nil, err
		}
	} else {
		ls.w, err = createWAL(walPath, packEpoch, nil, s.opts.SyncWAL, &s.m)
		if err != nil {
			return nil, err
		}
	}

	db.SetJournal(journalHook{ls})
	return ls, nil
}

// replay applies one recovered frame; false means the frame does not
// apply cleanly (corrupt beyond what checksums catch) and the prefix
// ends before it.
func (ls *LiveStore) replay(fr walFrame) bool {
	results := ls.db.Apply(context.Background(), fr.ops)
	for _, r := range results {
		if r.Err != nil {
			return false
		}
	}
	ls.s.m.RecoveredFrames.Add(1)
	ls.s.m.RecoveredOps.Add(uint64(len(fr.ops)))
	ls.rec.Frames++
	ls.rec.Ops += len(fr.ops)
	return true
}

// frameLen recomputes a frame's payload length (the codec is
// deterministic, so re-encoding measures the on-disk bytes).
func frameLen(fr walFrame) int {
	b, err := encodeFrame(fr.epochBefore, fr.ops)
	if err != nil {
		return 0
	}
	return len(b) - 8
}

// Database returns the journaled live database.
func (ls *LiveStore) Database() *live.Database { return ls.db }

// Recovery reports what opening found.
func (ls *LiveStore) Recovery() Recovery { return ls.rec }

// Checkpoint flattens the current snapshot into a fresh pack and
// truncates the WAL to the batches the pack does not yet contain. It
// is the durable analogue of compaction and safe to call while
// Applies are in flight.
func (ls *LiveStore) Checkpoint() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	db, epoch := ls.db.SnapshotAt()
	if err := WritePackMetric(ls.s.PackPath(), db, ls.s.opts.Metric, epoch, ls.s.opts.PageSize, &ls.s.m); err != nil {
		return fmt.Errorf("store: checkpoint pack: %w", err)
	}
	// Rotate: re-read the log we have been appending to and carry over
	// only the batches newer than the checkpoint (a batch journaled
	// while the pack was being written, not yet in any pack).
	_, frames, _, err := readWAL(ls.w.path)
	if err != nil {
		return fmt.Errorf("store: checkpoint rotate: %w", err)
	}
	var keep []walFrame
	for _, fr := range frames {
		if fr.epochAfter() > epoch {
			keep = append(keep, fr)
		}
	}
	neww, err := createWAL(ls.w.path, epoch, keep, ls.s.opts.SyncWAL, &ls.s.m)
	if err != nil {
		return fmt.Errorf("store: checkpoint rotate: %w", err)
	}
	ls.w.close()
	ls.w = neww
	ls.s.m.Checkpoints.Add(1)
	return nil
}

// Close releases the WAL handle. Checkpoint first for a clean
// shutdown; a close without checkpoint is the crash path recovery is
// built for.
func (ls *LiveStore) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.w.close()
}
