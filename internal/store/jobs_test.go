package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func jobBackend() *lbs.Service {
	sc := workload.USASchools(200, 3)
	return lbs.NewService(sc.DB, lbs.Options{K: 5, Budget: 300})
}

func settle(t *testing.T, j *jobs.Job) jobs.View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not settle: %v", j.ID, err)
	}
	return j.Snapshot()
}

var resumeSpec = jobs.Spec{
	Method:     jobs.MethodNNO,
	Seed:       42,
	Aggregates: []core.AggSpec{core.CountSpec(), core.SumSpec("enrollment")},
}

// TestJobResumeMatchesUninterrupted is the resume acceptance pin: a
// job recovered mid-run re-runs deterministically, so its final
// estimate is bit-equal to a run the crash never interrupted.
func TestJobResumeMatchesUninterrupted(t *testing.T) {
	// The uninterrupted reference run (no store).
	ref := settle(t, mustCreate(t, jobs.NewManager(jobBackend(), jobs.ManagerOptions{}), resumeSpec))
	if ref.State != jobs.StateDone {
		t.Fatalf("reference run state %s (err %q)", ref.State, ref.Error)
	}

	// The "crashed" process left a mid-run checkpoint: state running,
	// partial sample count, no results settled.
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	js := st.Jobs()
	if err := js.Save(jobs.StoredJob{
		ID:   "job-7",
		Spec: resumeSpec,
		View: jobs.View{
			ID: "job-7", State: jobs.StateRunning,
			Method: resumeSpec.Method, Seed: resumeSpec.Seed,
			Samples: 9, CreatedAt: time.Now().Add(-time.Minute),
		},
	}); err != nil {
		t.Fatal(err)
	}

	m := jobs.NewManager(jobBackend(), jobs.ManagerOptions{Store: js})
	rs, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Resumed != 1 || rs.Recovered != 0 || rs.Unresumable != 0 {
		t.Fatalf("recovery stats %+v, want exactly one resume", rs)
	}
	st.RecordRecovery(rs)
	if st.Stats().ResumedJobs != 1 {
		t.Fatalf("resumed_jobs counter = %d, want 1", st.Stats().ResumedJobs)
	}

	j, ok := m.Get("job-7")
	if !ok {
		t.Fatal("resumed job not in the table under its original ID")
	}
	got := settle(t, j)
	if got.State != jobs.StateDone {
		t.Fatalf("resumed run state %s (err %q)", got.State, got.Error)
	}
	if !got.Resumed {
		t.Fatal("resumed run not marked Resumed")
	}
	if got.Samples != ref.Samples || got.Queries != ref.Queries {
		t.Fatalf("resumed cost %d/%d samples/queries, uninterrupted %d/%d",
			got.Samples, got.Queries, ref.Samples, ref.Queries)
	}
	if len(got.Results) != len(ref.Results) {
		t.Fatalf("resumed %d results, uninterrupted %d", len(got.Results), len(ref.Results))
	}
	for i := range got.Results {
		if got.Results[i].Estimate != ref.Results[i].Estimate {
			t.Fatalf("result %d: resumed estimate %g != uninterrupted %g",
				i, float64(got.Results[i].Estimate), float64(ref.Results[i].Estimate))
		}
	}

	// The ID sequence advanced past the recovered job.
	j2, err := m.Create(resumeSpec)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != "job-8" {
		t.Fatalf("next ID %s, want job-8 (sequence past recovered IDs)", j2.ID)
	}
	settle(t, j2)
}

func TestFinishedJobSurvivesRestart(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := jobs.NewManager(jobBackend(), jobs.ManagerOptions{Store: st.Jobs(), CheckpointEvery: 1})
	want := settle(t, mustCreate(t, m1, resumeSpec))
	if want.State != jobs.StateDone {
		t.Fatalf("state %s", want.State)
	}

	m2 := jobs.NewManager(jobBackend(), jobs.ManagerOptions{Store: st.Jobs()})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Recovered != 1 || rs.Resumed != 0 {
		t.Fatalf("recovery stats %+v, want one finished reload", rs)
	}
	j, ok := m2.Get(want.ID)
	if !ok {
		t.Fatal("finished job missing after restart")
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("recovered finished job's Done() not closed")
	}
	got := j.Snapshot()
	if got.State != jobs.StateDone || got.Samples != want.Samples {
		t.Fatalf("recovered view %+v, want the stored final view %+v", got, want)
	}
	for i := range want.Results {
		if got.Results[i].Estimate != want.Results[i].Estimate {
			t.Fatalf("result %d: recovered %g != stored %g",
				i, float64(got.Results[i].Estimate), float64(want.Results[i].Estimate))
		}
	}
}

func TestCorruptJobEntrySettlesAsFailed(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobsDir, "job-3.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := jobs.NewManager(jobBackend(), jobs.ManagerOptions{Store: st.Jobs()})
	rs, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Unresumable != 1 {
		t.Fatalf("recovery stats %+v, want one unresumable", rs)
	}
	j, ok := m.Get("job-3")
	if !ok {
		t.Fatal("corrupt job vanished — recovery must keep it in the table")
	}
	v := j.Snapshot()
	if v.State != jobs.StateFailed || !strings.Contains(v.Error, "cannot be resumed") {
		t.Fatalf("view %+v, want failed with a typed unresumable reason", v)
	}

	// The settled failure is durable: a second restart reloads it as a
	// finished (failed) job instead of re-tripping on the torn bytes.
	m2 := jobs.NewManager(jobBackend(), jobs.ManagerOptions{Store: st.Jobs()})
	rs2, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Recovered != 1 || rs2.Unresumable != 0 {
		t.Fatalf("second recovery stats %+v, want the settled failure reloaded", rs2)
	}
}

func mustCreate(t *testing.T, m *jobs.Manager, spec jobs.Spec) *jobs.Job {
	t.Helper()
	j, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}
