// Package store is the durable storage engine: a paged heap-file
// database format (.lbspack) behind a pinning buffer pool, a
// write-ahead log for live-overlay mutations, and durable job and
// cache state — everything lbsserve needs for crash-consistent warm
// restarts. The split follows the write/read separation Polynesia
// argues for: mutations land in a write-optimized append-only log,
// queries scan a read-optimized immutable pack, and checkpointing
// moves state from one to the other.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/lbs"
)

// Tuple records use one deterministic binary encoding everywhere — in
// pack pages and in WAL frames — so a database written twice from the
// same contents is byte-identical (the bit-identity pins depend on
// it): varint ID, true and effective locations as little-endian IEEE
// bits, length-prefixed strings, and Attrs/Tags in sorted key order
// (Go map iteration order must not leak into the file).

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendTuple encodes t with its effective (ranking) location.
func appendTuple(b []byte, t lbs.Tuple, eff geom.Point) []byte {
	b = binary.AppendVarint(b, t.ID)
	b = appendF64(b, t.Loc.X)
	b = appendF64(b, t.Loc.Y)
	b = appendF64(b, eff.X)
	b = appendF64(b, eff.Y)
	b = appendString(b, t.Name)
	b = appendString(b, t.Category)
	b = appendUvarint(b, uint64(len(t.Attrs)))
	for _, k := range sortedKeys(t.Attrs) {
		b = appendString(b, k)
		b = appendF64(b, t.Attrs[k])
	}
	b = appendUvarint(b, uint64(len(t.Tags)))
	for _, k := range sortedKeys(t.Tags) {
		b = appendString(b, k)
		b = appendString(b, t.Tags[k])
	}
	return b
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reader is a bounds-checked cursor over an encoded record; every
// read reports malformed input instead of panicking, so corrupt pages
// and WAL frames surface as errors. With intern set, low-cardinality
// strings (categories, attribute and tag keys, tag values) decode to
// shared instances instead of one heap copy per tuple — names stay
// per-tuple, everything else in a city repeats across millions of
// rows.
type reader struct {
	b      []byte
	i      int
	intern map[string]string
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated uvarint at offset %d", r.i)
	}
	r.i += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.i:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", r.i)
	}
	r.i += n
	return v, nil
}

func (r *reader) f64() (float64, error) {
	if r.i+8 > len(r.b) {
		return 0, fmt.Errorf("truncated float at offset %d", r.i)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.i:]))
	r.i += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.i) < n {
		return "", fmt.Errorf("truncated string (%d bytes) at offset %d", n, r.i)
	}
	s := string(r.b[r.i : r.i+int(n)])
	r.i += int(n)
	return s, nil
}

// strShared decodes a string through the intern table (falling back to
// str without one). The map lookup on the raw bytes is allocation-free
// on a hit, so repeated values cost no heap copies.
func (r *reader) strShared() (string, error) {
	if r.intern == nil {
		return r.str()
	}
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)-r.i) < n {
		return "", fmt.Errorf("truncated string (%d bytes) at offset %d", n, r.i)
	}
	b := r.b[r.i : r.i+int(n)]
	r.i += int(n)
	if s, ok := r.intern[string(b)]; ok {
		return s, nil
	}
	s := string(b)
	r.intern[s] = s
	return s, nil
}

func (r *reader) point() (geom.Point, error) {
	x, err := r.f64()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := r.f64()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}

// capHint bounds a decoded element count used as a map size hint: a
// corrupt count must not drive a giant allocation before the
// inevitable truncation error surfaces on the first entry read (every
// entry costs at least one input byte).
func capHint(n uint64, remaining int) int {
	if n > uint64(remaining) {
		return remaining
	}
	return int(n)
}

// tuple decodes one record written by appendTuple.
func (r *reader) tuple() (lbs.Tuple, geom.Point, error) {
	var t lbs.Tuple
	var eff geom.Point
	var err error
	if t.ID, err = r.varint(); err != nil {
		return t, eff, err
	}
	if t.Loc, err = r.point(); err != nil {
		return t, eff, err
	}
	if eff, err = r.point(); err != nil {
		return t, eff, err
	}
	if t.Name, err = r.str(); err != nil {
		return t, eff, err
	}
	if t.Category, err = r.strShared(); err != nil {
		return t, eff, err
	}
	nattrs, err := r.uvarint()
	if err != nil {
		return t, eff, err
	}
	if nattrs > 0 {
		t.Attrs = make(map[string]float64, capHint(nattrs, len(r.b)-r.i))
		for j := uint64(0); j < nattrs; j++ {
			k, err := r.strShared()
			if err != nil {
				return t, eff, err
			}
			if t.Attrs[k], err = r.f64(); err != nil {
				return t, eff, err
			}
		}
	}
	ntags, err := r.uvarint()
	if err != nil {
		return t, eff, err
	}
	if ntags > 0 {
		t.Tags = make(map[string]string, capHint(ntags, len(r.b)-r.i))
		for j := uint64(0); j < ntags; j++ {
			k, err := r.strShared()
			if err != nil {
				return t, eff, err
			}
			if t.Tags[k], err = r.strShared(); err != nil {
				return t, eff, err
			}
		}
	}
	return t, eff, nil
}
