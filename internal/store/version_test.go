package store

// Pack format version negotiation and the v2 metric header field:
// v2 Haversine packs round-trip their metric, hand-crafted v1 packs
// (the pre-geodesic 68-byte header) still open and report Euclidean,
// and an unknown version fails with *UnsupportedVersionError before
// any checksum is interpreted — never a misleading *CorruptError.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geo"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func TestPackMetricRoundTrip(t *testing.T) {
	sc := workload.USASchools(300, 13)
	dir := t.TempDir()
	for _, m := range []geo.Metric{geo.Euclidean, geo.Haversine} {
		path := filepath.Join(dir, m.String()+".lbspack")
		if err := WritePackMetric(path, sc.DB, m, 7, 512, nil); err != nil {
			t.Fatalf("WritePackMetric(%s): %v", m, err)
		}
		p, err := OpenPack(path, 0, nil)
		if err != nil {
			t.Fatalf("OpenPack(%s): %v", m, err)
		}
		if got := p.Metric(); got != m {
			t.Fatalf("pack metric = %s, want %s", got, m)
		}
		p.Close()
		db, epoch, got, err := OpenDatabaseMetric(path, 0, nil)
		if err != nil {
			t.Fatalf("OpenDatabaseMetric(%s): %v", m, err)
		}
		if got != m || epoch != 7 {
			t.Fatalf("OpenDatabaseMetric = (%s, %d), want (%s, 7)", got, epoch, m)
		}
		sameTuples(t, sc.DB, db)
	}
}

// v1FromV2 rewrites a v2 Euclidean pack's header page into the
// format-1 layout: same fields minus the metric byte (68 bytes),
// version field 1, checksum recomputed. Data pages are untouched —
// the record codec did not change between formats.
func v1FromV2(t *testing.T, data []byte, pageSize int) []byte {
	t.Helper()
	mut := append([]byte(nil), data...)
	hdr := make([]byte, 0, headerSizeV1)
	hdr = append(hdr, mut[:8]...) // magic
	hdr = binary.LittleEndian.AppendUint32(hdr, 1)
	hdr = append(hdr, mut[12:64]...) // pageSize, count, epoch, bounds
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if len(hdr) != headerSizeV1 {
		t.Fatalf("crafted v1 header is %d bytes, want %d", len(hdr), headerSizeV1)
	}
	for i := 0; i < pageSize; i++ {
		mut[i] = 0
	}
	copy(mut, hdr)
	return mut
}

func TestPackV1ReadsBackAsEuclidean(t *testing.T) {
	sc := workload.USASchools(250, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "v2.lbspack")
	if err := WritePackMetric(path, sc.DB, geo.Euclidean, 3, 512, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v1Path := filepath.Join(dir, "v1.lbspack")
	if err := os.WriteFile(v1Path, v1FromV2(t, data, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	db, epoch, metric, err := OpenDatabaseMetric(v1Path, 0, nil)
	if err != nil {
		t.Fatalf("OpenDatabaseMetric(v1): %v", err)
	}
	if metric != geo.Euclidean {
		t.Fatalf("v1 pack metric = %s, want euclidean", metric)
	}
	if epoch != 3 {
		t.Fatalf("v1 pack epoch = %d, want 3", epoch)
	}
	sameTuples(t, sc.DB, db)
	sameAnswers(t, sc.DB, db, 10)
}

func TestPackUnknownVersionTyped(t *testing.T) {
	sc := workload.USASchools(100, 2)
	path := filepath.Join(t.TempDir(), "db.lbspack")
	if err := WritePack(path, sc.DB, 0, 512, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stamp a future version WITHOUT touching the checksum: the version
	// check must run first, so the stale crc is never interpreted and
	// the error is a version mismatch, not a bogus corruption report.
	binary.LittleEndian.PutUint32(data[8:], 9)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenPack(path, 0, nil)
	var ve *UnsupportedVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *UnsupportedVersionError", err)
	}
	if ve.Version != 9 || ve.Max != packVersion {
		t.Fatalf("UnsupportedVersionError = %+v, want Version 9 Max %d", ve, packVersion)
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Fatalf("version mismatch misreported as corruption: %v", err)
	}
}

func TestPackUnknownMetricByteCorrupt(t *testing.T) {
	sc := workload.USASchools(100, 2)
	path := filepath.Join(t.TempDir(), "db.lbspack")
	if err := WritePack(path, sc.DB, 0, 512, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[64] = 7 // not a metric this or any format defines
	binary.LittleEndian.PutUint32(data[headerSize-4:], crc32.ChecksumIEEE(data[:headerSize-4]))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenPack(path, 0, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
}

func TestStoreRefusesMetricMismatch(t *testing.T) {
	dir := t.TempDir()
	gen := func() *lbs.Database { return workload.USASchools(80, 4).DB }

	s, err := Open(dir, Options{Metric: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if _, warm, err := s.OpenOrCreateDatabase(gen); err != nil || warm {
		t.Fatalf("cold open: warm=%v err=%v", warm, err)
	}

	// Same directory reopened under the other metric: the warm pack was
	// laid out for Euclidean coordinates and must be refused.
	s2, err := Open(dir, Options{Metric: geo.Haversine})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.OpenOrCreateDatabase(gen); err == nil {
		t.Fatal("haversine store opened a euclidean pack without complaint")
	}

	// The matching metric still opens warm.
	s3, err := Open(dir, Options{Metric: geo.Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if _, warm, err := s3.OpenOrCreateDatabase(gen); err != nil || !warm {
		t.Fatalf("warm reopen: warm=%v err=%v", warm, err)
	}
}
