// Package voronoi computes ground-truth (full-knowledge) Voronoi and
// top-k Voronoi cells over an entire database. The estimators never
// use this package — they only see the kNN interface — but the
// evaluation does: for verifying inferred cells, for the cell-size
// statistics behind Figure 11 (the Starbucks decomposition with cells
// from under 1 km² to hundreds of thousands of km²), and for the SVG
// rendering of the diagram.
package voronoi

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/lbs"
)

// Diagram holds the top-k Voronoi cells of every tuple of a database.
type Diagram struct {
	Bounds geom.Rect
	K      int
	// Cells[i] is the top-k cell of the database's i-th tuple.
	Cells []*cell.Complex
	db    *lbs.Database
}

// Compute builds the exact top-k Voronoi diagram of a database. The
// per-cell work uses a kd-tree to gather nearby sites in growing rings
// until the distance-pruning rule guarantees completeness, so the cost
// is near-linear for realistic (clustered) inputs.
func Compute(db *lbs.Database, k int) *Diagram {
	pts := make([]geom.Point, db.Len())
	for i := range pts {
		pts[i] = db.Tuple(i).Loc
	}
	tree := kdtree.Build(pts)
	d := &Diagram{
		Bounds: db.Bounds(),
		K:      k,
		Cells:  make([]*cell.Complex, db.Len()),
		db:     db,
	}
	boundPoly := db.Bounds().Polygon()
	for i := range pts {
		d.Cells[i] = computeCell(boundPoly, tree, pts, i, k)
	}
	return d
}

// computeCell builds the exact top-k cell of site idx against all
// other sites: neighbors are pulled in rings of doubling radius until
// the ring radius exceeds twice the maximum distance from the site to
// its tentative cell (beyond which no bisector can cut the region).
func computeCell(bound geom.Polygon, tree *kdtree.Tree, pts []geom.Point, idx, k int) *cell.Complex {
	target := pts[idx]
	c := cell.New(bound, k)
	radius := initialRadius(tree, target, idx, k)
	seen := map[int]bool{idx: true}
	for {
		nbs := tree.WithinRadius(target, radius, func(j int) bool { return !seen[j] })
		sites := make([]cell.Site, 0, len(nbs))
		for _, nb := range nbs {
			seen[nb.Index] = true
			sites = append(sites, cell.Site{Key: int64(nb.Index), Loc: pts[nb.Index]})
		}
		cell.InsertSites(c, target, sites)
		needed := 2 * c.MaxDistFrom(target)
		if radius >= needed || radius >= 4*boundDiag(bound) {
			return c
		}
		radius = math.Max(radius*2, needed)
	}
}

func boundDiag(bound geom.Polygon) float64 {
	r := bound.BoundingRect()
	return r.Diagonal()
}

// initialRadius starts the ring search at roughly the k-th neighbor
// distance, doubled.
func initialRadius(tree *kdtree.Tree, target geom.Point, idx, k int) float64 {
	nbs := tree.KNN(target, k+1, func(j int) bool { return j != idx })
	if len(nbs) == 0 {
		return math.Inf(1)
	}
	return 2 * nbs[len(nbs)-1].Dist * (1 + 1e-9)
}

// Areas returns the cell areas indexed like the database tuples.
func (d *Diagram) Areas() []float64 {
	out := make([]float64, len(d.Cells))
	for i, c := range d.Cells {
		out[i] = c.Area()
	}
	return out
}

// Stats summarizes a cell-size distribution.
type Stats struct {
	N                  int
	Min, Max, Mean     float64
	P50, P90, P99      float64
	Gini               float64 // inequality of cell sizes (0 uniform, →1 skewed)
	MaxOverMin         float64
	TotalOverBoundArea float64 // should be ≈ k for a top-k diagram
}

// CellStats computes the distribution statistics of the diagram's cell
// areas — the quantitative content of Figure 11.
func (d *Diagram) CellStats() Stats {
	areas := d.Areas()
	return AreaStats(areas, d.Bounds.Area())
}

// AreaStats summarizes a set of areas against a reference total.
func AreaStats(areas []float64, boundArea float64) Stats {
	if len(areas) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), areas...)
	sort.Float64s(sorted)
	var sum float64
	for _, a := range sorted {
		sum += a
	}
	n := len(sorted)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return sorted[i]
	}
	// Gini via the sorted-weights formula.
	var cum float64
	for i, a := range sorted {
		cum += a * float64(2*(i+1)-n-1)
	}
	gini := 0.0
	if sum > 0 {
		gini = cum / (float64(n) * sum)
	}
	maxOverMin := math.Inf(1)
	if sorted[0] > 0 {
		maxOverMin = sorted[n-1] / sorted[0]
	}
	return Stats{
		N:                  n,
		Min:                sorted[0],
		Max:                sorted[n-1],
		Mean:               sum / float64(n),
		P50:                q(0.50),
		P90:                q(0.90),
		P99:                q(0.99),
		Gini:               gini,
		MaxOverMin:         maxOverMin,
		TotalOverBoundArea: sum / boundArea,
	}
}

// WriteSVG renders the diagram (k=1 cells as polygons, sites as dots)
// as a standalone SVG document — the Figure 11 picture.
func (d *Diagram) WriteSVG(w io.Writer, widthPx int) error {
	if widthPx <= 0 {
		widthPx = 1200
	}
	sc := float64(widthPx) / d.Bounds.Width()
	heightPx := int(d.Bounds.Height() * sc)
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - d.Bounds.Min.X) * sc, float64(heightPx) - (p.Y-d.Bounds.Min.Y)*sc
	}
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", widthPx, heightPx)
	for _, c := range d.Cells {
		for _, f := range c.Faces() {
			if len(f.Poly) < 3 {
				continue
			}
			fmt.Fprint(w, `<polygon points="`)
			for _, p := range f.Poly {
				x, y := tx(p)
				fmt.Fprintf(w, "%.2f,%.2f ", x, y)
			}
			fmt.Fprint(w, `" fill="none" stroke="#4477aa" stroke-width="0.6"/>`+"\n")
		}
	}
	for i := 0; i < d.db.Len(); i++ {
		x, y := tx(d.db.Tuple(i).Loc)
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="1.2" fill="#cc3311"/>`+"\n", x, y)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
