// Package voronoi computes ground-truth (full-knowledge) Voronoi and
// top-k Voronoi cells over an entire database. The estimators never
// use this package — they only see the kNN interface — but the
// evaluation does: for verifying inferred cells, for the cell-size
// statistics behind Figure 11 (the Starbucks decomposition with cells
// from under 1 km² to hundreds of thousands of km²), and for the SVG
// rendering of the diagram.
package voronoi

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/lbs"
)

// Diagram holds the top-k Voronoi cells of every tuple of a database.
type Diagram struct {
	Bounds geom.Rect
	K      int
	// Cells[i] is the top-k cell of the database's i-th tuple.
	Cells []*cell.Complex
	db    *lbs.Database
}

// Compute builds the exact top-k Voronoi diagram of a database. The
// per-cell work uses a kd-tree to gather nearby sites in growing rings
// until the distance-pruning rule guarantees completeness, so the cost
// is near-linear for realistic (clustered) inputs. Cells are
// independent, so the work is spread over one worker per CPU; use
// ComputeParallel to pick the worker count explicitly.
func Compute(db *lbs.Database, k int) *Diagram {
	return ComputeParallel(db, k, runtime.GOMAXPROCS(0))
}

// computeChunk is the work-stealing granule of ComputeParallel: large
// enough to amortize the atomic claim, small enough to balance the
// highly skewed per-cell cost (boundary cells cost far more than
// interior ones).
const computeChunk = 32

// ComputeParallel is Compute over an explicit worker pool. Workers
// claim fixed-size index chunks from an atomic cursor; each cell is
// computed independently against the shared (read-only) kd-tree, so
// the result is identical for every worker count, including 1.
func ComputeParallel(db *lbs.Database, k, workers int) *Diagram {
	pts := make([]geom.Point, db.Len())
	for i := range pts {
		pts[i] = db.Tuple(i).Loc
	}
	tree := kdtree.BuildOwned(pts)
	d := &Diagram{
		Bounds: db.Bounds(),
		K:      k,
		Cells:  make([]*cell.Complex, db.Len()),
		db:     db,
	}
	boundPoly := db.Bounds().Polygon()
	n := len(pts)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := newCellScratch(n)
		for i := range pts {
			d.Cells[i] = computeCell(boundPoly, tree, pts, i, k, sc)
		}
		return d
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns its scratch and its copy of the bounding
			// polygon so cell.New's Clone source is not shared.
			bp := boundPoly.Clone()
			sc := newCellScratch(n)
			for {
				start := int(cursor.Add(computeChunk)) - computeChunk
				if start >= n {
					return
				}
				end := start + computeChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					d.Cells[i] = computeCell(bp, tree, pts, i, k, sc)
				}
			}
		}()
	}
	wg.Wait()
	return d
}

// cellScratch is the per-worker working set of computeCell:
// generation-stamped "already gathered" marks (an O(1) reset per cell
// instead of a fresh map) and reusable neighbor/site buffers.
type cellScratch struct {
	stamp []uint32
	gen   uint32
	nbs   []kdtree.Neighbor
	sites []cell.Site
}

func newCellScratch(n int) *cellScratch {
	return &cellScratch{stamp: make([]uint32, n)}
}

// nextCell advances the generation, resetting the seen marks in O(1).
func (sc *cellScratch) nextCell() {
	sc.gen++
	if sc.gen == 0 { // wrapped: stamps from 2^32 cells ago could alias
		clear(sc.stamp)
		sc.gen = 1
	}
}

func (sc *cellScratch) seen(i int) bool { return sc.stamp[i] == sc.gen }
func (sc *cellScratch) mark(i int)      { sc.stamp[i] = sc.gen }

// computeCell builds the exact top-k cell of site idx against all
// other sites: neighbors are pulled in rings of doubling radius until
// the ring radius exceeds twice the maximum distance from the site to
// its tentative cell (beyond which no bisector can cut the region).
func computeCell(bound geom.Polygon, tree *kdtree.Tree, pts []geom.Point, idx, k int, sc *cellScratch) *cell.Complex {
	target := pts[idx]
	c := cell.New(bound, k)
	radius := initialRadius(tree, target, idx, k, sc)
	sc.nextCell()
	sc.mark(idx)
	for {
		sc.nbs = tree.WithinRadiusUnordered(target, radius,
			func(j int) bool { return !sc.seen(j) }, sc.nbs)
		sites := sc.sites[:0]
		for _, nb := range sc.nbs {
			sc.mark(nb.Index)
			sites = append(sites, cell.Site{Key: int64(nb.Index), Loc: pts[nb.Index]})
		}
		sc.sites = sites
		cell.InsertSites(c, target, sites)
		needed := 2 * c.MaxDistFrom(target)
		if radius >= needed || radius >= 4*boundDiag(bound) {
			return c
		}
		radius = math.Max(radius*2, needed)
	}
}

func boundDiag(bound geom.Polygon) float64 {
	r := bound.BoundingRect()
	return r.Diagonal()
}

// initialRadius starts the ring search at roughly the k-th neighbor
// distance, doubled. The search reuses the worker scratch's neighbor
// buffer: it fetches k+2 unfiltered neighbors and skips the target
// itself, avoiding both the result allocation and a per-cell filter
// closure.
func initialRadius(tree *kdtree.Tree, target geom.Point, idx, k int, sc *cellScratch) float64 {
	sc.nbs = tree.KNNInto(target, k+2, nil, sc.nbs)
	far := -1
	seen := 0
	for i := range sc.nbs {
		if sc.nbs[i].Index == idx {
			continue
		}
		seen++
		far = i
		if seen == k+1 {
			break
		}
	}
	if far < 0 {
		return math.Inf(1)
	}
	return 2 * sc.nbs[far].Dist * (1 + 1e-9)
}

// Areas returns the cell areas indexed like the database tuples.
func (d *Diagram) Areas() []float64 {
	out := make([]float64, len(d.Cells))
	for i, c := range d.Cells {
		out[i] = c.Area()
	}
	return out
}

// Stats summarizes a cell-size distribution.
type Stats struct {
	N                  int
	Min, Max, Mean     float64
	P50, P90, P99      float64
	Gini               float64 // inequality of cell sizes (0 uniform, →1 skewed)
	MaxOverMin         float64
	TotalOverBoundArea float64 // should be ≈ k for a top-k diagram
}

// CellStats computes the distribution statistics of the diagram's cell
// areas — the quantitative content of Figure 11.
func (d *Diagram) CellStats() Stats {
	areas := d.Areas()
	return AreaStats(areas, d.Bounds.Area())
}

// AreaStats summarizes a set of areas against a reference total.
func AreaStats(areas []float64, boundArea float64) Stats {
	if len(areas) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), areas...)
	sort.Float64s(sorted)
	var sum float64
	for _, a := range sorted {
		sum += a
	}
	n := len(sorted)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return sorted[i]
	}
	// Gini via the sorted-weights formula.
	var cum float64
	for i, a := range sorted {
		cum += a * float64(2*(i+1)-n-1)
	}
	gini := 0.0
	if sum > 0 {
		gini = cum / (float64(n) * sum)
	}
	maxOverMin := math.Inf(1)
	if sorted[0] > 0 {
		maxOverMin = sorted[n-1] / sorted[0]
	}
	return Stats{
		N:                  n,
		Min:                sorted[0],
		Max:                sorted[n-1],
		Mean:               sum / float64(n),
		P50:                q(0.50),
		P90:                q(0.90),
		P99:                q(0.99),
		Gini:               gini,
		MaxOverMin:         maxOverMin,
		TotalOverBoundArea: sum / boundArea,
	}
}

// WriteSVG renders the diagram (k=1 cells as polygons, sites as dots)
// as a standalone SVG document — the Figure 11 picture.
func (d *Diagram) WriteSVG(w io.Writer, widthPx int) error {
	if widthPx <= 0 {
		widthPx = 1200
	}
	sc := float64(widthPx) / d.Bounds.Width()
	heightPx := int(d.Bounds.Height() * sc)
	tx := func(p geom.Point) (float64, float64) {
		return (p.X - d.Bounds.Min.X) * sc, float64(heightPx) - (p.Y-d.Bounds.Min.Y)*sc
	}
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", widthPx, heightPx)
	for _, c := range d.Cells {
		for _, f := range c.Faces() {
			if len(f.Poly) < 3 {
				continue
			}
			fmt.Fprint(w, `<polygon points="`)
			for _, p := range f.Poly {
				x, y := tx(p)
				fmt.Fprintf(w, "%.2f,%.2f ", x, y)
			}
			fmt.Fprint(w, `" fill="none" stroke="#4477aa" stroke-width="0.6"/>`+"\n")
		}
	}
	for i := 0; i < d.db.Len(); i++ {
		x, y := tx(d.db.Tuple(i).Loc)
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="1.2" fill="#cc3311"/>`+"\n", x, y)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
