package voronoi

import (
	"fmt"
	"testing"
)

// BenchmarkCompute10k measures ground-truth top-1 diagram construction
// over a 10k-tuple database at several worker counts — the evaluation-
// scale workload the parallel Compute targets. The 1→8 ratio is the
// scaling acceptance metric (meaningful only on multi-core hosts).
func BenchmarkCompute10k(b *testing.B) {
	db := randomDB(10000, 31)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := ComputeParallel(db, 1, workers)
				if len(d.Cells) != db.Len() {
					b.Fatal("incomplete diagram")
				}
			}
		})
	}
}
