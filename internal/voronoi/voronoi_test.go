package voronoi

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
	"repro/internal/workload"
)

func testDB(n int, seed int64) *lbs.Database {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	pts := workload.ClusterMix(workload.ClusterMixConfig{
		Bounds: bounds, N: n, Clusters: 4, UniformFrac: 0.25, Seed: seed,
	})
	tuples := make([]lbs.Tuple, n)
	for i, p := range pts {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: p}
	}
	return lbs.NewDatabase(bounds, tuples)
}

func TestDiagramPartition(t *testing.T) {
	// Top-1 cells must partition the bounding box; top-k cells must
	// cover it exactly k times.
	db := testDB(60, 5)
	for _, k := range []int{1, 2, 3} {
		d := Compute(db, k)
		var total float64
		for _, a := range d.Areas() {
			total += a
		}
		want := float64(k) * db.Bounds().Area()
		if math.Abs(total-want) > 1e-5*want {
			t.Errorf("k=%d: total cell area %v want %v", k, total, want)
		}
	}
}

func TestDiagramMembership(t *testing.T) {
	// Random points must lie in exactly the cell(s) of their k nearest
	// tuples.
	db := testDB(40, 7)
	d := Compute(db, 2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		q := geom.RandomInRect(rng, db.Bounds())
		// Brute-force 2 nearest.
		type cand struct {
			i int
			d float64
		}
		var best, second cand = cand{-1, math.Inf(1)}, cand{-1, math.Inf(1)}
		for i := 0; i < db.Len(); i++ {
			dd := q.Dist(db.Tuple(i).Loc)
			if dd < best.d {
				second = best
				best = cand{i, dd}
			} else if dd < second.d {
				second = cand{i, dd}
			}
		}
		if second.d-best.d < 1e-6 {
			continue // near a boundary; skip
		}
		if !d.Cells[best.i].Contains(q) {
			t.Fatalf("nearest cell does not contain %v", q)
		}
		if !d.Cells[second.i].Contains(q) {
			t.Fatalf("second-nearest top-2 cell does not contain %v", q)
		}
	}
}

func TestCellStatsSkew(t *testing.T) {
	// Clustered data must show the Figure-11 heavy tail: a large
	// max/min ratio and positive Gini.
	db := testDB(150, 11)
	d := Compute(db, 1)
	st := d.CellStats()
	if st.N != 150 {
		t.Fatalf("stats N: %d", st.N)
	}
	if st.MaxOverMin < 10 {
		t.Errorf("expected heavy-tailed cells, max/min = %v", st.MaxOverMin)
	}
	if st.Gini <= 0.2 {
		t.Errorf("expected substantial inequality, gini = %v", st.Gini)
	}
	if math.Abs(st.TotalOverBoundArea-1) > 1e-6 {
		t.Errorf("partition check: %v", st.TotalOverBoundArea)
	}
	if st.Min > st.P50 || st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Errorf("quantiles not ordered: %+v", st)
	}
}

func TestAreaStatsEmpty(t *testing.T) {
	if st := AreaStats(nil, 1); st.N != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestWriteSVG(t *testing.T) {
	db := testDB(25, 13)
	d := Compute(db, 1)
	var sb strings.Builder
	if err := d.WriteSVG(&sb, 400); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Errorf("malformed SVG envelope")
	}
	if strings.Count(svg, "<circle") != 25 {
		t.Errorf("site dots: %d", strings.Count(svg, "<circle"))
	}
	if strings.Count(svg, "<polygon") < 25 {
		t.Errorf("cell polygons: %d", strings.Count(svg, "<polygon"))
	}
}

func TestComputeSingletonDB(t *testing.T) {
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10))
	db := lbs.NewDatabase(bounds, []lbs.Tuple{{ID: 1, Loc: geom.Pt(5, 5)}})
	d := Compute(db, 1)
	if len(d.Cells) != 1 {
		t.Fatalf("cells: %d", len(d.Cells))
	}
	if math.Abs(d.Cells[0].Area()-100) > 1e-9 {
		t.Errorf("singleton cell should be the whole box: %v", d.Cells[0].Area())
	}
}
