package voronoi

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lbs"
)

func randomDB(n int, seed int64) *lbs.Database {
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]lbs.Tuple, n)
	for i := range tuples {
		tuples[i] = lbs.Tuple{ID: int64(i + 1), Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
	}
	return lbs.NewDatabase(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), tuples)
}

// TestComputeParallelMatchesSerial checks worker count does not change
// the diagram: per-cell areas and cut sets must be identical, because
// cells are computed independently from the same deterministic inputs.
func TestComputeParallelMatchesSerial(t *testing.T) {
	db := randomDB(400, 21)
	for _, k := range []int{1, 3} {
		serial := ComputeParallel(db, k, 1)
		parallel := ComputeParallel(db, k, 8)
		if len(serial.Cells) != len(parallel.Cells) {
			t.Fatalf("k=%d: cell count %d vs %d", k, len(serial.Cells), len(parallel.Cells))
		}
		for i := range serial.Cells {
			s, p := serial.Cells[i], parallel.Cells[i]
			if s.NumCuts() != p.NumCuts() {
				t.Fatalf("k=%d cell %d: cuts %d vs %d", k, i, s.NumCuts(), p.NumCuts())
			}
			sa, pa := s.Area(), p.Area()
			if diff := sa - pa; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("k=%d cell %d: area %.12f vs %.12f", k, i, sa, pa)
			}
		}
		// The top-k areas must still tile the bound k times over.
		stats := parallel.CellStats()
		if got := stats.TotalOverBoundArea; got < float64(k)*0.999 || got > float64(k)*1.001 {
			t.Fatalf("k=%d: total/bound = %.6f, want ≈ %d", k, got, k)
		}
	}
}
