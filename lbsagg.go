// Package lbsagg is the public API of this library: aggregate
// estimation over location based services with restrictive kNN query
// interfaces, reproducing "Aggregate Estimations over Location Based
// Services" (Liu, Rahman, Thirumuruganathan, Zhang, Das; PVLDB 8(10),
// 2015).
//
// # Overview
//
// A location based service hides a database of located tuples behind
// a query interface that only answers "what are the k tuples nearest
// this point?". This library estimates SUM/COUNT/AVG aggregates over
// such hidden databases by querying that interface alone:
//
//   - NewLRAggregator — Algorithm LR-LBS-AGG, for interfaces that
//     return tuple locations (Google-Maps-like). Completely unbiased;
//     weights each sampled tuple by the exactly computed mass of its
//     top-k Voronoi cell.
//   - NewLNRAggregator — Algorithm LNR-LBS-AGG, for interfaces that
//     return only a ranked list of tuple IDs (WeChat-like). Infers
//     Voronoi cells from rank flips via binary search, with bias
//     bounded by Theorem 2 and tunable via EdgeEps; can also infer a
//     tuple's position to arbitrary precision (Localize).
//   - NewNNOBaseline — the prior-art LR-LBS-NNO estimator (Dalvi et
//     al., KDD 2011), provided as the evaluation baseline.
//
// # Estimation sessions (API v3)
//
// All three algorithms implement the Estimator interface — a source
// of i.i.d. point samples — and execute through one shared,
// context-aware run driver. A run is configured with functional
// options instead of positional limits:
//
//   - WithMaxSamples(n) / WithMaxQueries(n) — hard budget bounds;
//   - WithTargetCI(rel) — stop once the 95 % confidence half-width of
//     every aggregate falls below rel × |estimate|;
//   - WithProgress(fn) — stream a TracePoint per aggregate after every
//     completed sample;
//   - WithParallelism(n) — draw samples from n concurrent workers
//     (independent estimator forks) and merge their accumulator
//     states; against a latency-bound remote service the wall-clock
//     time shrinks almost linearly in n.
//   - WithBatch(m) — draw up to m point samples per oracle call
//     through the batch query path (see below), amortizing network
//     round-trips and budget/limiter synchronization.
//
// Every query path takes a context.Context: canceling it stops the
// run gracefully and returns the Results of the samples completed so
// far, and remote adapters cancel their in-flight HTTP requests.
//
// Runs return Results with Bessel-corrected standard errors,
// confidence intervals and full estimate-versus-cost traces.
//
// # Declarative aggregates (API v3)
//
// Aggregates are declarative specs rather than Go closures: a small
// JSON-serializable predicate AST — AttrCmp, TagEq, InRect, combined
// with And/Or/Not — plus aggregate specs built from CountSpec,
// SumSpec(attr) and AvgSpec(attr), each optionally restricted with
// WithWhere. CompilePlan compiles a request's spec list once into the
// closure form the estimators execute (AVG expands into a SUM/COUNT
// pair finished through RatioOf), so the declarative layer costs
// nothing per sample:
//
//	plan, err := lbsagg.CompilePlan([]lbsagg.AggSpec{
//		lbsagg.CountSpec(),
//		lbsagg.AvgSpec("rating").WithWhere(lbsagg.TagEq("open_sunday", "yes")),
//	})
//	phys, err := agg.Run(ctx, plan.Aggs, lbsagg.WithMaxQueries(5000))
//	results := plan.Finish(phys)
//
// Because specs are plain data, the same aggregate request can travel
// over the wire — which is what makes estimation jobs possible.
//
// # Multi-aggregate query planner (API v4)
//
// Real analytics front ends ask many aggregates at once, and answering
// each from its own sample stream multiplies the query cost by the
// batch size. PlanBatch compiles a whole spec list into a QueryPlan —
// a streaming operator graph that shares work across the batch:
//
//   - predicates are canonicalized (and/or reordering folds away) and
//     deduped, so each distinct selection compiles once and is
//     evaluated at most once per returned record;
//   - COUNT/SUM/AVG over the same selection fuse into shared physical
//     aggregates (an AVG rides the same SUM and COUNT as its siblings);
//   - specs group by compatible method, chosen per group by a small
//     cost model (auto picks LR over location-returned interfaces, LNR
//     over rank-only ones; location-reading LNR groups split off so
//     only they pay the §4.3 localization surcharge);
//   - the shared query budget is re-allocated across groups at
//     checkpoint boundaries by observed accumulator variance, so the
//     noisiest aggregates drink most of what remains.
//
// Typical use:
//
//	plan, err := lbsagg.PlanBatch(specs, lbsagg.PlanOptions{
//		Seed: 42, MaxQueries: 5000, TargetCI: 0.05,
//	})
//	br, err := plan.Execute(ctx, svc, nil)   // br.Results per spec
//
// Under a fixed per-group seed the planned estimates are bit-identical
// to running each group's specs independently — sharing changes the
// cost, never the numbers (pinned by the equivalence suite). A batch
// of 16 aggregates over 4 selections reaches the same confidence
// target for less than a third of the independent-run query cost (see
// BENCH_planner.json).
//
// # Estimation jobs (API v3)
//
// An HTTP server (NewHTTPServer) is a full estimation service, not
// just a raw oracle: POST /v1/estimate submits a declarative job —
// method (lr | lnr | nno), per-job RNG seed, aggregate specs, run
// options — that runs server-side with its own budget scope while all
// jobs share the service's budget and cache. GET /v1/jobs/{id}
// reports status and partial results, GET /v1/jobs/{id}/trace streams
// the estimate-versus-cost trace as NDJSON, DELETE /v1/jobs/{id}
// cancels and returns the partial results of the samples completed so
// far, and GET /v1/stats exposes live query/budget/cache/job
// counters. The HTTP client drives jobs remotely (Estimate, Job,
// WaitJob, FollowJobTrace, CancelJob) and retries transient
// failures — 5xx and genuine rate-limit 429s, never a spent budget —
// with jittered exponential backoff (RetryPolicy).
//
// # Batch queries and answer caching
//
// The paper's cost model makes the kNN interface — not computation —
// the scarce resource, so the access layer spends it carefully:
//
//   - Batching. Every oracle answers multi-point batches
//     (QueryLRBatch/QueryLNRBatch): the simulator charges a batch
//     under one atomic budget reservation and one rate-limiter lock
//     round-trip, and the HTTP adapter ships a batch as one POST
//     (/v1/query/lr:batch) instead of one GET per point. Answers are
//     index-aligned with the points; when the budget dies mid-batch,
//     the covered prefix is answered (nil marks the rest) alongside
//     ErrBudgetExhausted. Each answered point still costs one query —
//     batching buys round-trips, never budget.
//
//   - Caching. NewCachedOracle layers a concurrent sharded LRU over
//     any oracle, keyed by (quantized point, k, selection). Hits
//     replay recorded answers without consuming budget or limiter
//     quota; Stats() exposes hit/miss/eviction counters for cost
//     accounting. Caching models client-side memoization of answers
//     already paid for — it does not change the simulated service
//     contract, and estimates over a cached oracle are identical to
//     uncached runs (with Quantum=0), just cheaper on workloads that
//     repeat query points. Queries carrying a functional filter only
//     use the cache when CacheOptions.TrustFilter declares the filter
//     fixed; otherwise they bypass it, so a cache shared by
//     differently filtered callers can never replay a wrong answer.
//
// # Scaling out: sharded federation
//
// One simulator (or one upstream) eventually saturates; the federation
// layer scales the oracle horizontally while keeping every estimator,
// cache, scope and job unchanged:
//
//   - PartitionDatabase splits a database into N disjoint spatial
//     shards by recursive longest-axis median splits; shard regions
//     tile the bounds and carry balanced tuple counts.
//   - NewShardedService builds the one-call composite: N in-process
//     shard services behind a ShardRouter.
//   - NewShardRouter federates arbitrary members — in-process services
//     or remote HTTP clients (the lbsserve -upstream deployment) —
//     each declared as a Shard{Querier, Region}.
//
// A ShardRouter implements Querier via two-phase scatter-gather: the
// shard owning the query point answers first, its k-th-neighbor
// distance bounds the ball a better candidate could hide in, only
// shards intersecting that ball are fanned out to, and the merged
// candidates are re-ranked by the service ordering contract
// (distance ties break on tuple ID). Federated answers are
// bit-identical to a single Service over the union database — pinned
// by property tests — so estimates, costs and seeds reproduce exactly
// across 1, 2, 4, 8, ... shards. The router owns the logical cost
// model (budget, rate limiter, QueryCount = client-visible queries);
// per-shard physical counters aggregate through its Stats(), which
// GET /v1/stats exposes as the federation section.
//
// # Live databases
//
// NewLiveDatabase wraps an immutable Database in a mutable view:
// inserts, deletes and moves apply through the Mutator interface
// (Apply) while queries keep running — readers never block, each
// query resolves one immutable snapshot, and a background rebuild
// folds accumulated changes into a fresh spatial index once the
// overlay outgrows LiveOptions.CompactThreshold. Every applied
// mutation advances the database epoch; a query bracketed by two
// equal Epoch() reads saw exactly that epoch's contents. Answers over
// a live database with no pending mutations are bit-identical to a
// Service over the same tuples, so estimates and seeds reproduce
// exactly across the immutable/live boundary.
//
// NewLiveCluster is the sharded form: N live shards behind a
// ShardRouter, with mutations routed to the shard owning the
// location (cross-shard moves re-home the tuple). The HTTP server
// exposes any Mutator as POST /v1/tuples:stream — an NDJSON stream
// of ops acked one by one with the epoch at which each became
// visible (HTTPClient.StreamTuples drives it) — and mutations
// invalidate exactly the dirtied region of an answer cache wired
// through LiveOptions.OnInvalidate.
//
// # Bring your own service
//
// The estimators run against the Oracle interface, which this library
// implements both as an in-process simulator (NewService over a
// NewDatabase) faithful to real interface constraints — top-k caps,
// maximum coverage radii, query budgets, server-side filters,
// location obfuscation and prominence ranking — and as an HTTP client
// adapter (NewHTTPClient). To target a real LBS, implement a thin
// adapter that forwards QueryLR/QueryLNR to the provider's API and
// construct the estimators over it; honor the context so runs stay
// cancellable. Adapters may additionally implement BatchOracle to
// serve WithBatch runs in one round-trip per batch.
//
// # Quick start
//
//	db := lbsagg.NewDatabase(bounds, tuples)
//	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 10})
//	agg := lbsagg.NewLRAggregator(svc, lbsagg.DefaultLROptions(42))
//	plan, err := lbsagg.CompilePlan([]lbsagg.AggSpec{lbsagg.CountSpec()})
//	phys, err := agg.Run(ctx, plan.Aggs,
//		lbsagg.WithMaxQueries(5000),
//		lbsagg.WithParallelism(8))
//	res := plan.Finish(phys)
//
// See examples/ for complete programs and internal/experiments for
// the reproduction of every figure and table of the paper.
//
// # MIGRATION from the v1/v2 APIs
//
// v2 threads context.Context through the whole query path and moves
// run limits into options. Old → new call sites:
//
//	agg.Run(aggs, maxSamples, maxQueries)
//	  → agg.Run(ctx, aggs, lbsagg.WithMaxSamples(maxSamples),
//	        lbsagg.WithMaxQueries(maxQueries))
//	  → agg.RunBudget(aggs, maxSamples, maxQueries)   // deprecated shim,
//	                                                  // one release only
//	svc.QueryLR(q, filter)      → svc.QueryLR(ctx, q, filter)
//	svc.QueryLNR(q, filter)     → svc.QueryLNR(ctx, q, filter)
//	agg.Step(aggs)              → agg.Step(ctx, aggs)
//	agg.Localize(id, anchor)    → agg.Localize(ctx, id, anchor)
//	NewHTTPClient(url, sel, hc) → NewHTTPClient(ctx, url, sel, hc)
//
// v3 replaces closure-built aggregates with declarative specs. The
// closure constructors remain as thin deprecated shims that compile
// the equivalent spec:
//
//	Count()                  → CountSpec()                 (via CompilePlan)
//	SumAttr(a)               → SumSpec(a)
//	CountTag(t, v)           → CountSpec().WithWhere(TagEq(t, v))
//	CountInRect(r)           → CountSpec().WithWhere(InRect(r))
//	CountWhere(name, fn)     → CountSpec().WithWhere(pred).WithLabel(name)
//	                           for predicates expressible in the AST;
//	                           closure form stays for arbitrary Go conditions
//	RatioOf(sum, count)      → AvgSpec(a) (finished by the plan)
//
// NewHTTPClient now returns the concrete *HTTPClient (still an
// Oracle), exposing the job methods and the retry policy; and
// NewHTTPServer returns the concrete *HTTPServer (still an
// http.Handler), exposing the job manager for graceful shutdown.
//
// Custom Oracle implementations must add the ctx parameter to both
// query methods; custom estimators implement Estimator (Step, Service,
// Fork) and inherit the shared Driver.
package lbsagg

import (
	"context"
	"net/http"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/httpapi"
	"repro/internal/jobs"
	"repro/internal/lbs"
	"repro/internal/live"
	"repro/internal/sampling"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// Geometry primitives.
type (
	// Point is a location on the Euclidean plane.
	Point = geom.Point
	// Rect is an axis-aligned bounding rectangle.
	Rect = geom.Rect
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect constructs a Rect from two opposite corners.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// Service-side types (the simulated LBS).
type (
	// Tuple is one hidden-database row.
	Tuple = lbs.Tuple
	// Database is an immutable indexed tuple collection.
	Database = lbs.Database
	// Service is a kNN query interface over a database.
	Service = lbs.Service
	// ServiceOptions configures a service view (top-k, coverage
	// radius, budget, ranking, ...).
	ServiceOptions = lbs.Options
	// Obfuscation distorts the locations a service ranks by.
	Obfuscation = lbs.Obfuscation
	// Filter is a server-side selection condition (pass-through).
	Filter = lbs.Filter
	// LRRecord is a location-returned result row.
	LRRecord = lbs.LRRecord
	// LNRRecord is a rank-only result row.
	LNRRecord = lbs.LNRRecord
)

// ErrBudgetExhausted is returned once a service's query budget is
// spent.
var ErrBudgetExhausted = lbs.ErrBudgetExhausted

// NewDatabase builds a database over tuples within bounds.
func NewDatabase(bounds Rect, tuples []Tuple) *Database {
	return lbs.NewDatabase(bounds, tuples)
}

// NewObfuscatedDatabase builds a database whose ranking locations are
// obfuscated (the WeChat model).
func NewObfuscatedDatabase(bounds Rect, tuples []Tuple, obf Obfuscation) *Database {
	return lbs.NewObfuscatedDatabase(bounds, tuples, obf)
}

// NewService creates a kNN service view over a database.
func NewService(db *Database, opts ServiceOptions) *Service {
	return lbs.NewService(db, opts)
}

// CategoryFilter matches tuples of a category; NameFilter matches a
// name (server-side selection pass-through).
func CategoryFilter(category string) Filter { return lbs.CategoryFilter(category) }

// NameFilter matches tuples with the given name.
func NameFilter(name string) Filter { return lbs.NameFilter(name) }

// Oracle is the query surface estimators run against; *Service
// implements it, and so does the HTTP client adapter.
type Oracle = core.Oracle

// BatchOracle is an Oracle with a native multi-point query path;
// *Service, *CachedOracle and the HTTP client all implement it.
type BatchOracle = core.BatchOracle

// Querier is the full service-side query surface (point + batch
// queries); both the simulator and cache wrappers satisfy it.
type Querier = lbs.Querier

// Answer-cache types (client-side memoization over any Querier).
type (
	// CachedOracle memoizes answers in a concurrent sharded LRU.
	CachedOracle = lbs.CachedOracle
	// CacheOptions configures capacity, sharding, point quantization
	// and the selection label of a CachedOracle.
	CacheOptions = lbs.CacheOptions
	// CacheStats snapshots hit/miss/eviction counters.
	CacheStats = lbs.CacheStats
)

// NewCachedOracle wraps a Querier with an answer cache: hits replay
// recorded answers without consuming budget.
func NewCachedOracle(inner Querier, opts CacheOptions) *CachedOracle {
	return lbs.NewCachedOracle(inner, opts)
}

// Federation types (horizontal scale-out; see the package overview).
type (
	// Shard is one federation member: a querier plus the region whose
	// tuples it owns.
	Shard = shard.Shard
	// ShardRouter federates shards behind the Querier interface with
	// two-phase scatter-gather; answers are bit-identical to a single
	// Service over the union database.
	ShardRouter = shard.Router
	// ShardRouterStats snapshots federation cost accounting: logical
	// vs upstream query counts and the per-shard breakdown.
	ShardRouterStats = shard.RouterStats
	// ShardStat is one member's slice of ShardRouterStats.
	ShardStat = shard.ShardStat
)

// PartitionDatabase splits a database into n disjoint spatial shard
// databases (recursive longest-axis median splits; regions tile the
// bounds, effective locations carry over verbatim).
func PartitionDatabase(db *Database, n int) []*Database { return shard.Partition(db, n) }

// NewShardedService partitions db into n in-process shard services
// behind a ShardRouter configured with the given logical options —
// drop-in for NewService(db, opts) at any shard count.
func NewShardedService(db *Database, opts ServiceOptions, n int) (*ShardRouter, error) {
	return shard.NewLocal(db, opts, n)
}

// NewShardRouter federates explicit members (in-process services or
// remote HTTPClients over disjoint upstreams). Members must answer
// distance-ranked LR queries with k of at least opts.K (×overfetch
// under prominence ranking).
func NewShardRouter(shards []Shard, opts ServiceOptions) (*ShardRouter, error) {
	return shard.NewRouter(shards, opts)
}

// Fault-tolerance types (see README "Operating under failure").
type (
	// Resilience configures the router's failure handling: per-shard
	// call deadlines, bounded retry of transient errors, hedged
	// requests to replicas, and the per-shard circuit breaker.
	Resilience = shard.Resilience
	// BreakerState is a member's circuit-breaker state (closed / open
	// / half-open), reported in ShardStat and /v1/stats.
	BreakerState = shard.BreakerState
	// PartialAnswerError annotates a usable answer drawn from a
	// partial federation (a member down or routed around): Degraded
	// counts degraded answers, Dropped lost batch positions, Missing
	// skipped members. It travels alongside records, not instead of
	// them.
	PartialAnswerError = lbs.PartialError
	// TolerantQuerier absorbs partial-answer annotations from a
	// wrapped Querier so estimation layers see clean answers while the
	// degraded counters still accumulate.
	TolerantQuerier = lbs.TolerantQuerier
	// FaultSpec configures a deterministic fault injector: transient
	// error rates, crash-recover windows, injected latency, slow-shard
	// and duplicate-delivery modes.
	FaultSpec = faults.Spec
	// FaultInjector wraps any Querier with seed-deterministic injected
	// faults; Kill/Revive flip availability mid-run.
	FaultInjector = faults.Injector
	// FaultStats snapshots an injector's fault counters.
	FaultStats = faults.Stats
)

// Circuit-breaker states.
const (
	BreakerClosed   = shard.BreakerClosed
	BreakerOpen     = shard.BreakerOpen
	BreakerHalfOpen = shard.BreakerHalfOpen
)

// Typed federation failures.
var (
	// ErrOwnerDown reports that the member owning the query point is
	// unavailable — the one failure scatter-gather cannot degrade
	// around (match with errors.Is; the concrete error also carries
	// the shard index).
	ErrOwnerDown = shard.ErrOwnerDown
	// ErrNoShards reports that every member's breaker is open.
	ErrNoShards = shard.ErrNoShards
	// ErrShardTimeout reports a member call exceeding
	// Resilience.ShardTimeout.
	ErrShardTimeout = shard.ErrShardTimeout
)

// DefaultResilience returns the production failure-handling defaults:
// 10s shard timeout, 2 retries with jittered backoff, hedging at the
// p95 latency estimate, and a 5-failure breaker with 1s cooldown.
func DefaultResilience() Resilience { return shard.DefaultResilience() }

// NewResilientShardRouter federates explicit members with the given
// failure handling; NewShardRouter is equivalent to resilience left
// zero (every mechanism off — strict bit-identical scatter-gather).
func NewResilientShardRouter(shards []Shard, opts ServiceOptions, res Resilience) (*ShardRouter, error) {
	return shard.NewRouterWithResilience(shards, opts, res)
}

// NewShardedServiceWrapped partitions db into n in-process shard
// services, passing each member querier through wrap (index, querier)
// before federating — the hook chaos tests use to install fault
// injectors per member. A nil wrap federates the bare services.
func NewShardedServiceWrapped(db *Database, opts ServiceOptions, n int, res Resilience,
	wrap func(i int, q Querier) Querier) (*ShardRouter, error) {
	return shard.FromPartsWrapped(shard.Partition(db, n), opts, res, wrap)
}

// NewFaultInjector wraps inner with deterministic injected faults per
// spec. The same seed replays the same fault schedule.
func NewFaultInjector(inner Querier, spec FaultSpec) *FaultInjector {
	return faults.New(inner, spec)
}

// ParseFaultSpec parses the comma-separated key=value fault-spec
// syntax of the lbsserve -fault-spec flag (e.g.
// "seed=7,transient=0.05,latency=2ms,sigma=0.6").
func ParseFaultSpec(s string) (FaultSpec, error) { return faults.ParseSpec(s) }

// NewTolerantQuerier wraps inner so partial-answer annotations are
// absorbed (counted, not surfaced) — what the job manager installs
// over a resilient federation.
func NewTolerantQuerier(inner Querier) *TolerantQuerier {
	return lbs.NewTolerantQuerier(inner)
}

// IsPartialAnswer reports whether err is (or wraps) a partial-answer
// annotation, returning it when so. The records returned alongside
// the error are valid — degraded, not wrong.
func IsPartialAnswer(err error) (*PartialAnswerError, bool) { return lbs.AsPartial(err) }

// Live-database types (mutable backends; see the package overview).
type (
	// LiveDatabase is a mutable database view: an immutable base plus
	// a mutation overlay, queried through lock-free snapshots.
	LiveDatabase = live.Database
	// LiveCluster is a sharded live database behind a ShardRouter.
	LiveCluster = live.Cluster
	// LiveOptions configures compaction and cache invalidation.
	LiveOptions = live.Options
	// LiveOp is one mutation (insert, delete or move).
	LiveOp = live.Op
	// LiveOpKind discriminates LiveOp.
	LiveOpKind = live.OpKind
	// LiveResult is the per-op outcome of a Mutator.Apply call: the
	// epoch after the op, or the rejection error.
	LiveResult = live.Result
	// LiveStats snapshots a live database's mutation counters.
	LiveStats = live.Stats
	// Mutator is the mutation surface (LiveDatabase, LiveCluster, or
	// a custom implementation behind the HTTP ingest endpoint).
	Mutator = live.Mutator
)

// Mutation op kinds.
const (
	LiveOpInsert = live.OpInsert
	LiveOpDelete = live.OpDelete
	LiveOpMove   = live.OpMove
)

// Mutation rejection errors.
var (
	// ErrLiveUnknownID rejects a delete/move of an ID not in the
	// database.
	ErrLiveUnknownID = live.ErrUnknownID
	// ErrLiveDuplicateID rejects an insert of an ID already present.
	ErrLiveDuplicateID = live.ErrDuplicateID
	// ErrLiveOutOfRegion rejects an insert/move landing outside every
	// shard region (or the database bounds).
	ErrLiveOutOfRegion = live.ErrOutOfRegion
)

// NewLiveDatabase wraps an immutable base database in a mutable view
// with the given service options. Queries are served from immutable
// snapshots and never block behind mutations.
func NewLiveDatabase(base *Database, opts ServiceOptions, lopts LiveOptions) (*LiveDatabase, error) {
	return live.New(base, opts, lopts)
}

// NewLiveCluster partitions base into n live shards behind a
// ShardRouter; queries stay bit-identical to a single live database
// while mutations route to the owning shard.
func NewLiveCluster(base *Database, opts ServiceOptions, n int, lopts LiveOptions) (*LiveCluster, error) {
	return live.NewCluster(base, opts, n, lopts)
}

// HTTPSelection is the declarative server-side filter of the HTTP
// wire protocol.
type HTTPSelection = httpapi.Selection

// HTTP service types (estimation as a service).
type (
	// HTTPServer serves the full estimation service: raw oracle
	// endpoints, batch queries, estimation jobs and live stats.
	HTTPServer = httpapi.Server
	// HTTPServerOptions configures the optional server subsystems.
	HTTPServerOptions = httpapi.ServerOptions
	// HTTPClient is the remote Oracle and estimation-job client.
	HTTPClient = httpapi.Client
	// RetryPolicy bounds the HTTP client's transient-failure retries.
	RetryPolicy = httpapi.RetryPolicy
)

// NewHTTPServer exposes a service backend over HTTP (see cmd/lbsserve
// for a runnable server). Any Querier serves: the raw simulator or a
// CachedOracle gateway in front of it. The returned server is an
// http.Handler; its Jobs() manager runs /v1/estimate jobs.
func NewHTTPServer(svc Querier) *HTTPServer { return httpapi.NewServer(svc) }

// NewHTTPServerWith is NewHTTPServer with explicit options (job
// retention cap, default per-job query budget).
func NewHTTPServerWith(svc Querier, opts HTTPServerOptions) *HTTPServer {
	return httpapi.NewServerWith(svc, opts)
}

// NewHTTPClient connects to an HTTP-exposed service and returns a
// client the estimators can run against (it implements Oracle and
// BatchOracle) — the template for adapting real provider APIs — and
// that drives server-side estimation jobs (Estimate, Job, WaitJob,
// FollowJobTrace, CancelJob). The construction-time metadata probe
// honors ctx; queries issued later carry the per-run context.
func NewHTTPClient(ctx context.Context, baseURL string, sel HTTPSelection, hc *http.Client) (*HTTPClient, error) {
	return httpapi.NewClient(ctx, baseURL, sel, hc)
}

// Estimation-job types (the declarative request/response surface of
// POST /v1/estimate; see the package overview).
type (
	// JobSpec is a declarative estimation request: method, seed,
	// aggregate specs and run options.
	JobSpec = jobs.Spec
	// JobRunOptions are the wire form of the run options.
	JobRunOptions = jobs.RunOptions
	// JobView is a snapshot of a job: state, partial or final results.
	JobView = jobs.View
	// JobState is a job lifecycle phase (running, done, canceled,
	// failed).
	JobState = jobs.State
	// JobResult is the wire form of one aggregate's result.
	JobResult = jobs.ResultView
	// JobTraceEvent is one NDJSON line of a job's trace stream.
	JobTraceEvent = jobs.TraceEvent
	// JobManager creates, observes and cancels server-side jobs.
	JobManager = jobs.Manager
)

// Job method and state names. JobMethodAuto lets the server-side
// planner's cost model choose per method group; the same names
// configure PlanOptions.Method for in-process batches.
const (
	JobMethodAuto = jobs.MethodAuto
	JobMethodLR   = jobs.MethodLR
	JobMethodLNR  = jobs.MethodLNR
	JobMethodNNO  = jobs.MethodNNO

	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobCanceled = jobs.StateCanceled
	JobFailed   = jobs.StateFailed
)

// Declarative aggregate specs (API v3).
type (
	// PredSpec is a JSON-serializable predicate AST node.
	PredSpec = core.PredSpec
	// AggSpec is a declarative COUNT/SUM/AVG aggregate.
	AggSpec = core.AggSpec
	// RectSpec is the wire form of a rectangle.
	RectSpec = core.RectSpec
	// AggPlan is a compiled spec list: physical aggregates + finisher.
	AggPlan = core.AggPlan
)

// Predicate constructors.
var (
	// AttrCmp compares a numeric attribute against a constant.
	AttrCmp = core.AttrCmp
	// TagEq tests a categorical attribute for equality.
	TagEq = core.TagEq
	// InRect tests the tuple location against a rectangle.
	InRect = core.InRect
	// And is the conjunction of its arguments.
	And = core.And
	// Or is the disjunction of its arguments.
	Or = core.Or
	// Not negates its argument.
	Not = core.Not
)

// Comparison operators for AttrCmp.
const (
	CmpLT = core.CmpLT
	CmpLE = core.CmpLE
	CmpGT = core.CmpGT
	CmpGE = core.CmpGE
	CmpEQ = core.CmpEQ
	CmpNE = core.CmpNE
)

// Aggregate-spec constructors.
var (
	// CountSpec builds COUNT(*).
	CountSpec = core.CountSpec
	// SumSpec builds SUM(attr).
	SumSpec = core.SumSpec
	// AvgSpec builds AVG(attr) (a SUM/COUNT pair under the hood).
	AvgSpec = core.AvgSpec
	// CompilePlan compiles a spec list into an executable AggPlan.
	CompilePlan = core.CompilePlan
)

// Multi-aggregate query planner types (API v4; see the package
// overview).
type (
	// PlanOptions configure PlanBatch: method policy, batch seed,
	// shared run bounds and the checkpoint re-plan grain.
	PlanOptions = core.PlanOptions
	// QueryPlan is a compiled multi-aggregate batch: method groups of
	// fused physical aggregates over deduped predicates. Single-use;
	// run it with Execute.
	QueryPlan = core.QueryPlan
	// PlanGroup is one method group of a QueryPlan.
	PlanGroup = core.PlanGroup
	// PlanProgress is the per-sample streaming event of Execute.
	PlanProgress = core.PlanProgress
	// BatchResult is the outcome of executing a QueryPlan: one Result
	// per spec plus per-group accounts and the re-plan history.
	BatchResult = core.BatchResult
	// GroupReport is the post-run account of one plan group.
	GroupReport = core.GroupReport
	// ReplanEvent records one checkpoint-boundary budget re-allocation.
	ReplanEvent = core.ReplanEvent
	// GroupAlloc is one group's slice of a ReplanEvent.
	GroupAlloc = core.GroupAlloc
)

// PlanBatch compiles a batch of aggregate specs into a grouped, fused
// QueryPlan: predicates dedup across specs, same-selection aggregates
// share physical accumulators, and Execute re-allocates the shared
// query budget across method groups by observed variance. Estimates
// are bit-identical to independent per-group runs at equal seeds —
// batching changes the cost, never the numbers.
var PlanBatch = core.PlanBatch

// Estimator types.
type (
	// Aggregate is the compiled (closure) form of an aggregate; build
	// it from AggSpec via CompilePlan.
	Aggregate = core.Aggregate
	// Record is the estimator-visible view of a returned tuple.
	Record = core.Record
	// Result is an estimation outcome with error bars and trace.
	Result = core.Result
	// TracePoint is one point of the estimate-versus-cost trace.
	TracePoint = core.TracePoint
	// LROptions configures LR-LBS-AGG.
	LROptions = core.LROptions
	// LNROptions configures LNR-LBS-AGG.
	LNROptions = core.LNROptions
	// NNOOptions configures the LR-LBS-NNO baseline.
	NNOOptions = core.NNOOptions
	// LRAggregator is Algorithm LR-LBS-AGG.
	LRAggregator = core.LRAggregator
	// LNRAggregator is Algorithm LNR-LBS-AGG.
	LNRAggregator = core.LNRAggregator
	// NNOBaseline is Algorithm LR-LBS-NNO.
	NNOBaseline = core.NNOBaseline
	// Estimator is the sample-source interface all three algorithms
	// implement; custom algorithms that implement it plug into the
	// same run driver.
	Estimator = core.Estimator
	// Driver executes any Estimator with budgets, traces, early
	// stopping and optional parallelism.
	Driver = core.Driver
	// RunOption configures an estimation run.
	RunOption = core.RunOption
)

// Run options for estimation sessions (see the package overview).
var (
	// WithMaxSamples stops a run after n completed samples.
	WithMaxSamples = core.WithMaxSamples
	// WithMaxQueries stops a run after n service queries.
	WithMaxQueries = core.WithMaxQueries
	// WithTargetCI stops a run at a relative 95 % CI half-width.
	WithTargetCI = core.WithTargetCI
	// WithProgress streams per-sample trace points to a callback.
	WithProgress = core.WithProgress
	// WithParallelism samples from n concurrent estimator forks.
	WithParallelism = core.WithParallelism
	// WithBatch draws up to m samples per oracle round-trip.
	WithBatch = core.WithBatch
)

// The HTTP client adapter serves the batch path too, so WithBatch
// collapses m remote queries into one POST.
var _ BatchOracle = (*httpapi.Client)(nil)

// NewLRAggregator builds the unbiased location-returned estimator
// over any Oracle (the in-process simulator or a remote adapter).
func NewLRAggregator(svc Oracle, opts LROptions) *LRAggregator {
	return core.NewLRAggregator(svc, opts)
}

// DefaultLROptions enables all four error-reduction devices of §3.2.
func DefaultLROptions(seed int64) LROptions { return core.DefaultLROptions(seed) }

// NewLNRAggregator builds the rank-only estimator.
func NewLNRAggregator(svc Oracle, opts LNROptions) *LNRAggregator {
	return core.NewLNRAggregator(svc, opts)
}

// NewNNOBaseline builds the prior-art baseline estimator.
func NewNNOBaseline(svc Oracle, opts NNOOptions) *NNOBaseline {
	return core.NewNNOBaseline(svc, opts)
}

// Closure-form aggregate constructors.
//
// Deprecated: prefer the declarative spec constructors (CountSpec,
// SumSpec, AvgSpec with WithWhere) compiled through CompilePlan —
// specs serialize to JSON and can be submitted as remote jobs. The
// closure forms remain for selection conditions that need arbitrary
// Go code.
var (
	// Count returns the COUNT(*) aggregate.
	Count = core.Count
	// CountWhere returns COUNT with a post-processed condition.
	CountWhere = core.CountWhere
	// CountTag returns COUNT of tuples whose tag matches.
	CountTag = core.CountTag
	// CountInRect returns COUNT of tuples inside a rectangle
	// (location-based condition; triggers localization over LNR).
	CountInRect = core.CountInRect
	// SumAttr returns SUM(attr).
	SumAttr = core.SumAttr
	// SumAttrWhere returns SUM(attr) with a condition.
	SumAttrWhere = core.SumAttrWhere
	// RatioOf combines two results into an AVG-style ratio.
	RatioOf = core.RatioOf
)

// Sampling distributions (§5.2 external knowledge).
type (
	// Sampler is a query-location distribution.
	Sampler = sampling.Sampler
	// UniformSampler samples uniformly over a rectangle.
	UniformSampler = sampling.Uniform
	// GridSampler is a piecewise-constant weighted density.
	GridSampler = sampling.Grid
)

// NewUniformSampler returns the uniform distribution over rect.
func NewUniformSampler(rect Rect) *UniformSampler { return sampling.NewUniform(rect) }

// NewGridSampler builds a weighted grid sampler from row-major cell
// weights.
func NewGridSampler(rect Rect, w, h int, weights []float64) *GridSampler {
	return sampling.NewGrid(rect, w, h, weights)
}

// GridFromPoints estimates a density grid from observed locations
// (the census substitute).
func GridFromPoints(rect Rect, w, h int, pts []Point, alpha float64) *GridSampler {
	return sampling.GridFromPoints(rect, w, h, pts, alpha)
}

// Workload scenarios (synthetic stand-ins for the paper's datasets).
type Scenario = workload.Scenario

// Named scenario constructors.
var (
	// USASchools generates the schools-with-enrollment scenario.
	USASchools = workload.USASchools
	// USARestaurants generates the restaurants-with-ratings scenario.
	USARestaurants = workload.USARestaurants
	// StarbucksUS generates the Starbucks-among-POIs scenario.
	StarbucksUS = workload.StarbucksUS
	// WeChatChina generates the obfuscated social-network scenario.
	WeChatChina = workload.WeChatChina
	// WeiboChina generates the rank-only social-network scenario.
	WeiboChina = workload.WeiboChina
)

// Durable storage (internal/store): the paged .lbspack database
// format, WAL-backed live overlays, and warm restarts.
type (
	// Store is one durable data directory (pack + WAL + jobs + cache).
	Store = store.Store
	// StoreOptions configures page size, buffer-pool budget and WAL
	// syncing.
	StoreOptions = store.Options
	// StoreStats is the engine's counter snapshot (the /v1/stats
	// "store" section).
	StoreStats = store.Stats
	// StoreRecovery describes what opening a durable live database
	// found (warm/cold, recovered epoch, replayed WAL frames).
	StoreRecovery = store.Recovery
	// StoreCorruptError is the typed failure of every storage
	// integrity check (bad magic, checksum mismatch, truncated page).
	StoreCorruptError = store.CorruptError
	// TupleSource is a scannable tuple supplier a Database can
	// materialize from (implemented by the store's paged packs).
	TupleSource = lbs.TupleSource
)

// OpenStore opens (creating if needed) a durable data directory.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// WritePack writes db as a paged .lbspack file at path (epoch is
// recorded in the header; pageSize 0 means the default).
func WritePack(path string, db *Database, epoch uint64, pageSize int) error {
	return store.WritePack(path, db, epoch, pageSize, nil)
}

// OpenPackedDatabase opens a .lbspack and materializes the database
// it holds, returning the recorded epoch (poolPages 0 means the
// default buffer-pool budget).
func OpenPackedDatabase(path string, poolPages int) (*Database, uint64, error) {
	return store.OpenDatabase(path, poolPages, nil)
}

// NewDatabaseFromStore materializes a Database from any TupleSource.
var NewDatabaseFromStore = lbs.NewDatabaseFromStore
