// Package lbsagg is the public API of this library: aggregate
// estimation over location based services with restrictive kNN query
// interfaces, reproducing "Aggregate Estimations over Location Based
// Services" (Liu, Rahman, Thirumuruganathan, Zhang, Das; PVLDB 8(10),
// 2015).
//
// # Overview
//
// A location based service hides a database of located tuples behind
// a query interface that only answers "what are the k tuples nearest
// this point?". This library estimates SUM/COUNT/AVG aggregates over
// such hidden databases by querying that interface alone:
//
//   - NewLRAggregator — Algorithm LR-LBS-AGG, for interfaces that
//     return tuple locations (Google-Maps-like). Completely unbiased;
//     weights each sampled tuple by the exactly computed mass of its
//     top-k Voronoi cell.
//   - NewLNRAggregator — Algorithm LNR-LBS-AGG, for interfaces that
//     return only a ranked list of tuple IDs (WeChat-like). Infers
//     Voronoi cells from rank flips via binary search, with bias
//     bounded by Theorem 2 and tunable via EdgeEps; can also infer a
//     tuple's position to arbitrary precision (Localize).
//   - NewNNOBaseline — the prior-art LR-LBS-NNO estimator (Dalvi et
//     al., KDD 2011), provided as the evaluation baseline.
//
// Estimation drivers take Aggregate specs (Count, SumAttr, CountTag,
// CountWhere, ...) and return Results with Bessel-corrected standard
// errors, confidence intervals and full estimate-versus-cost traces.
//
// # Bring your own service
//
// The estimators run against the Service type, which this library
// also implements as an in-process simulator (NewService over a
// NewDatabase) faithful to real interface constraints: top-k caps,
// maximum coverage radii, query budgets, server-side filters,
// location obfuscation and prominence ranking. To target a real LBS,
// implement a thin adapter that forwards QueryLR/QueryLNR to the
// provider's API and construct the estimators over it.
//
// # Quick start
//
//	db := lbsagg.NewDatabase(bounds, tuples)
//	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 10})
//	agg := lbsagg.NewLRAggregator(svc, lbsagg.DefaultLROptions(42))
//	res, err := agg.Run([]lbsagg.Aggregate{lbsagg.Count()}, 0, 5000)
//
// See examples/ for complete programs and internal/experiments for
// the reproduction of every figure and table of the paper.
package lbsagg

import (
	"net/http"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/httpapi"
	"repro/internal/lbs"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// Geometry primitives.
type (
	// Point is a location on the Euclidean plane.
	Point = geom.Point
	// Rect is an axis-aligned bounding rectangle.
	Rect = geom.Rect
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect constructs a Rect from two opposite corners.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// Service-side types (the simulated LBS).
type (
	// Tuple is one hidden-database row.
	Tuple = lbs.Tuple
	// Database is an immutable indexed tuple collection.
	Database = lbs.Database
	// Service is a kNN query interface over a database.
	Service = lbs.Service
	// ServiceOptions configures a service view (top-k, coverage
	// radius, budget, ranking, ...).
	ServiceOptions = lbs.Options
	// Obfuscation distorts the locations a service ranks by.
	Obfuscation = lbs.Obfuscation
	// Filter is a server-side selection condition (pass-through).
	Filter = lbs.Filter
	// LRRecord is a location-returned result row.
	LRRecord = lbs.LRRecord
	// LNRRecord is a rank-only result row.
	LNRRecord = lbs.LNRRecord
)

// ErrBudgetExhausted is returned once a service's query budget is
// spent.
var ErrBudgetExhausted = lbs.ErrBudgetExhausted

// NewDatabase builds a database over tuples within bounds.
func NewDatabase(bounds Rect, tuples []Tuple) *Database {
	return lbs.NewDatabase(bounds, tuples)
}

// NewObfuscatedDatabase builds a database whose ranking locations are
// obfuscated (the WeChat model).
func NewObfuscatedDatabase(bounds Rect, tuples []Tuple, obf Obfuscation) *Database {
	return lbs.NewObfuscatedDatabase(bounds, tuples, obf)
}

// NewService creates a kNN service view over a database.
func NewService(db *Database, opts ServiceOptions) *Service {
	return lbs.NewService(db, opts)
}

// CategoryFilter matches tuples of a category; NameFilter matches a
// name (server-side selection pass-through).
func CategoryFilter(category string) Filter { return lbs.CategoryFilter(category) }

// NameFilter matches tuples with the given name.
func NameFilter(name string) Filter { return lbs.NameFilter(name) }

// Oracle is the query surface estimators run against; *Service
// implements it, and so does the HTTP client adapter.
type Oracle = core.Oracle

// HTTPSelection is the declarative server-side filter of the HTTP
// wire protocol.
type HTTPSelection = httpapi.Selection

// NewHTTPServer exposes a simulated service over HTTP (see
// cmd/lbsserve for a runnable server).
func NewHTTPServer(svc *Service) http.Handler { return httpapi.NewServer(svc) }

// NewHTTPClient connects to an HTTP-exposed service and returns an
// Oracle the estimators can run against — the template for adapting
// real provider APIs.
func NewHTTPClient(baseURL string, sel HTTPSelection, hc *http.Client) (Oracle, error) {
	return httpapi.NewClient(baseURL, sel, hc)
}

// Estimator types.
type (
	// Aggregate is a SUM/COUNT-style aggregate specification.
	Aggregate = core.Aggregate
	// Record is the estimator-visible view of a returned tuple.
	Record = core.Record
	// Result is an estimation outcome with error bars and trace.
	Result = core.Result
	// TracePoint is one point of the estimate-versus-cost trace.
	TracePoint = core.TracePoint
	// LROptions configures LR-LBS-AGG.
	LROptions = core.LROptions
	// LNROptions configures LNR-LBS-AGG.
	LNROptions = core.LNROptions
	// NNOOptions configures the LR-LBS-NNO baseline.
	NNOOptions = core.NNOOptions
	// LRAggregator is Algorithm LR-LBS-AGG.
	LRAggregator = core.LRAggregator
	// LNRAggregator is Algorithm LNR-LBS-AGG.
	LNRAggregator = core.LNRAggregator
	// NNOBaseline is Algorithm LR-LBS-NNO.
	NNOBaseline = core.NNOBaseline
)

// NewLRAggregator builds the unbiased location-returned estimator
// over any Oracle (the in-process simulator or a remote adapter).
func NewLRAggregator(svc Oracle, opts LROptions) *LRAggregator {
	return core.NewLRAggregator(svc, opts)
}

// DefaultLROptions enables all four error-reduction devices of §3.2.
func DefaultLROptions(seed int64) LROptions { return core.DefaultLROptions(seed) }

// NewLNRAggregator builds the rank-only estimator.
func NewLNRAggregator(svc Oracle, opts LNROptions) *LNRAggregator {
	return core.NewLNRAggregator(svc, opts)
}

// NewNNOBaseline builds the prior-art baseline estimator.
func NewNNOBaseline(svc Oracle, opts NNOOptions) *NNOBaseline {
	return core.NewNNOBaseline(svc, opts)
}

// Aggregate constructors.
var (
	// Count returns the COUNT(*) aggregate.
	Count = core.Count
	// CountWhere returns COUNT with a post-processed condition.
	CountWhere = core.CountWhere
	// CountTag returns COUNT of tuples whose tag matches.
	CountTag = core.CountTag
	// CountInRect returns COUNT of tuples inside a rectangle
	// (location-based condition; triggers localization over LNR).
	CountInRect = core.CountInRect
	// SumAttr returns SUM(attr).
	SumAttr = core.SumAttr
	// SumAttrWhere returns SUM(attr) with a condition.
	SumAttrWhere = core.SumAttrWhere
	// RatioOf combines two results into an AVG-style ratio.
	RatioOf = core.RatioOf
)

// Sampling distributions (§5.2 external knowledge).
type (
	// Sampler is a query-location distribution.
	Sampler = sampling.Sampler
	// UniformSampler samples uniformly over a rectangle.
	UniformSampler = sampling.Uniform
	// GridSampler is a piecewise-constant weighted density.
	GridSampler = sampling.Grid
)

// NewUniformSampler returns the uniform distribution over rect.
func NewUniformSampler(rect Rect) *UniformSampler { return sampling.NewUniform(rect) }

// NewGridSampler builds a weighted grid sampler from row-major cell
// weights.
func NewGridSampler(rect Rect, w, h int, weights []float64) *GridSampler {
	return sampling.NewGrid(rect, w, h, weights)
}

// GridFromPoints estimates a density grid from observed locations
// (the census substitute).
func GridFromPoints(rect Rect, w, h int, pts []Point, alpha float64) *GridSampler {
	return sampling.GridFromPoints(rect, w, h, pts, alpha)
}

// Workload scenarios (synthetic stand-ins for the paper's datasets).
type Scenario = workload.Scenario

// Named scenario constructors.
var (
	// USASchools generates the schools-with-enrollment scenario.
	USASchools = workload.USASchools
	// USARestaurants generates the restaurants-with-ratings scenario.
	USARestaurants = workload.USARestaurants
	// StarbucksUS generates the Starbucks-among-POIs scenario.
	StarbucksUS = workload.StarbucksUS
	// WeChatChina generates the obfuscated social-network scenario.
	WeChatChina = workload.WeChatChina
	// WeiboChina generates the rank-only social-network scenario.
	WeiboChina = workload.WeiboChina
)
