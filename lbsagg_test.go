package lbsagg_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	lbsagg "repro"
)

// TestFacadeQuickstart exercises the public API exactly as the README
// quick start does.
func TestFacadeQuickstart(t *testing.T) {
	bounds := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(100, 100))
	tuples := make([]lbsagg.Tuple, 50)
	for i := range tuples {
		tuples[i] = lbsagg.Tuple{
			ID:    int64(i + 1),
			Loc:   lbsagg.Pt(float64(3+(i*17)%94), float64(5+(i*31)%89)),
			Attrs: map[string]float64{"v": float64(i % 7)},
		}
	}
	db := lbsagg.NewDatabase(bounds, tuples)
	svc := lbsagg.NewService(db, lbsagg.ServiceOptions{K: 5})
	agg := lbsagg.NewLRAggregator(svc, lbsagg.DefaultLROptions(42))
	res, err := agg.Run(context.Background(), []lbsagg.Aggregate{lbsagg.Count(), lbsagg.SumAttr("v")}, lbsagg.WithMaxSamples(300))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Estimate-50)/50 > 0.2 && math.Abs(res[0].Estimate-50) > 5*res[0].StdErr {
		t.Errorf("facade COUNT: %+v", res[0])
	}
	avg := lbsagg.RatioOf(res[1], res[0])
	if avg.Estimate <= 0 {
		t.Errorf("facade AVG: %+v", avg)
	}
}

// TestFacadeLNRAndScenarios covers the LNR path and the scenario
// constructors through the facade.
func TestFacadeLNRAndScenarios(t *testing.T) {
	sc := lbsagg.WeiboChina(150, 7)
	svc := lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{K: 5})
	agg := lbsagg.NewLNRAggregator(svc, lbsagg.LNROptions{Seed: 3})
	res, err := agg.Run(context.Background(), []lbsagg.Aggregate{lbsagg.CountTag("gender", "m")}, lbsagg.WithMaxSamples(40))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queries == 0 || res[0].Samples != 40 {
		t.Errorf("LNR run accounting: %+v", res[0])
	}
}

// TestFacadeSamplers covers the sampler constructors.
func TestFacadeSamplers(t *testing.T) {
	r := lbsagg.NewRect(lbsagg.Pt(0, 0), lbsagg.Pt(10, 10))
	u := lbsagg.NewUniformSampler(r)
	if u.Density(lbsagg.Pt(5, 5)) != 0.01 {
		t.Errorf("uniform density")
	}
	g := lbsagg.NewGridSampler(r, 2, 1, []float64{1, 3})
	if g.Density(lbsagg.Pt(7, 5)) <= g.Density(lbsagg.Pt(2, 5)) {
		t.Errorf("grid weights not respected")
	}
	pts := []lbsagg.Point{lbsagg.Pt(1, 1), lbsagg.Pt(2, 2)}
	if lbsagg.GridFromPoints(r, 4, 4, pts, 1) == nil {
		t.Errorf("GridFromPoints")
	}
}

// TestFacadeFilters covers pass-through filters via the facade.
func TestFacadeFilters(t *testing.T) {
	sc := lbsagg.StarbucksUS(30, 100, 5)
	svc := lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{K: 3})
	res, err := svc.QueryLR(context.Background(), lbsagg.Pt(2000, 1200), lbsagg.NameFilter("Starbucks"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res {
		if rec.Name != "Starbucks" {
			t.Errorf("filter leak: %+v", rec)
		}
	}
}

// TestFacadeFederation covers the scale-out surface: partitioning,
// the one-call sharded service, and estimator runs over a router.
func TestFacadeFederation(t *testing.T) {
	sc := lbsagg.USASchools(200, 3)
	parts := lbsagg.PartitionDatabase(sc.DB, 4)
	if len(parts) != 4 {
		t.Fatalf("partitions: %d", len(parts))
	}
	router, err := lbsagg.NewShardedService(sc.DB, lbsagg.ServiceOptions{K: 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	single := lbsagg.NewService(sc.DB, lbsagg.ServiceOptions{K: 5})
	ctx := context.Background()
	q := sc.DB.Bounds().Center()
	want, _ := single.QueryLR(ctx, q, nil)
	got, err := router.QueryLR(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) || want[0].ID != got[0].ID {
		t.Fatalf("federated answer diverges: %+v vs %+v", want, got)
	}
	// An estimator runs over the router unchanged.
	agg := lbsagg.NewLRAggregator(router, lbsagg.DefaultLROptions(42))
	plan, err := lbsagg.CompilePlan([]lbsagg.AggSpec{lbsagg.CountSpec()})
	if err != nil {
		t.Fatal(err)
	}
	phys, err := agg.Run(ctx, plan.Aggs, lbsagg.WithMaxSamples(5))
	if err != nil {
		t.Fatal(err)
	}
	res := plan.Finish(phys)
	if len(res) != 1 || res[0].Samples != 5 {
		t.Fatalf("federated estimator run: %+v", res)
	}
	if st := router.Stats(); st.Logical == 0 || len(st.Shards) != 4 {
		t.Fatalf("router stats: %+v", st)
	}
}

// TestFacadeFaultTolerance exercises the failure-handling exports: a
// resilient federation with per-member fault injectors survives a
// member kill, answers degraded with a partial annotation, and a
// tolerant wrapper absorbs the annotation for estimation layers.
func TestFacadeFaultTolerance(t *testing.T) {
	sc := lbsagg.USASchools(150, 4)
	inj := make([]*lbsagg.FaultInjector, 2)
	router, err := lbsagg.NewShardedServiceWrapped(sc.DB, lbsagg.ServiceOptions{K: 10}, 2,
		lbsagg.Resilience{BreakerThreshold: 1, BreakerCooldown: time.Hour, Seed: 1},
		func(i int, q lbsagg.Querier) lbsagg.Querier {
			inj[i] = lbsagg.NewFaultInjector(q, lbsagg.FaultSpec{Seed: int64(i)})
			return inj[i]
		})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dead := router.Stats().Shards[1].Region.Center()
	inj[1].Kill()
	if _, err := router.QueryLR(ctx, dead, nil); !errors.Is(err, lbsagg.ErrOwnerDown) {
		t.Fatalf("owner down: %v", err)
	}
	if st := router.Stats(); st.Shards[1].State != lbsagg.BreakerOpen {
		t.Fatalf("breaker state: %s", st.Shards[1].State)
	}
	recs, err := router.QueryLR(ctx, dead, nil)
	pe, ok := lbsagg.IsPartialAnswer(err)
	if !ok || len(recs) == 0 || pe.Degraded != 1 {
		t.Fatalf("degraded answer: %d recs, %v", len(recs), err)
	}
	tol := lbsagg.NewTolerantQuerier(router)
	if _, err := tol.QueryLR(ctx, dead, nil); err != nil {
		t.Fatalf("tolerant wrapper surfaced: %v", err)
	}
	if tol.DegradedCount() == 0 {
		t.Fatal("tolerant wrapper did not count the degraded answer")
	}
	if spec, err := lbsagg.ParseFaultSpec("seed=3,transient=0.1"); err != nil || spec.TransientRate != 0.1 {
		t.Fatalf("ParseFaultSpec: %+v, %v", spec, err)
	}
	if lbsagg.DefaultResilience().BreakerThreshold == 0 {
		t.Fatal("default resilience leaves the breaker off")
	}
}
